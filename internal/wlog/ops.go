package wlog

import (
	"fmt"
	"sort"
)

// This file provides whole-log transformations. Every operation returns a
// new valid Log (renumbering lsn/is-lsn as needed) and leaves its inputs
// untouched. Operations that renumber is-lsn change which records are
// "consecutive", which affects the ⊙ operator's semantics on the result;
// each function documents whether it renumbers.

// Merge combines several logs into one. Workflow instances are kept intact
// and reidentified (wids are renumbered to avoid collisions, in input
// order); records are interleaved round-robin across the input logs,
// preserving each input's internal order. is-lsn values are preserved
// (instances are copied whole), so pattern semantics within an instance are
// unchanged.
func Merge(logs ...*Log) (*Log, error) {
	var out []Record
	nextWID := uint64(1)
	var cursors [][]Record
	for _, l := range logs {
		widMap := make(map[uint64]uint64)
		records := l.Records()
		renumbered := make([]Record, 0, len(records))
		for _, r := range records {
			mapped, ok := widMap[r.WID]
			if !ok {
				mapped = nextWID
				widMap[r.WID] = mapped
				nextWID++
			}
			r.WID = mapped
			renumbered = append(renumbered, r)
		}
		cursors = append(cursors, renumbered)
	}
	for {
		emitted := false
		for i := range cursors {
			if len(cursors[i]) > 0 {
				r := cursors[i][0]
				cursors[i] = cursors[i][1:]
				r.LSN = uint64(len(out) + 1)
				out = append(out, r)
				emitted = true
			}
		}
		if !emitted {
			break
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wlog: Merge of no records")
	}
	return New(out)
}

// InstancePredicate selects workflow instances by their full record slice
// (in is-lsn order).
type InstancePredicate func(records []Record) bool

// FilterInstances keeps only the instances satisfying pred, renumbering
// lsn densely but preserving wid and is-lsn values (instances are kept
// whole, so per-instance pattern semantics are unchanged).
func FilterInstances(l *Log, pred InstancePredicate) (*Log, error) {
	keep := make(map[uint64]bool)
	for _, wid := range l.WIDs() {
		if pred(l.Instance(wid)) {
			keep[wid] = true
		}
	}
	var out []Record
	for _, r := range l.Records() {
		if keep[r.WID] {
			r.LSN = uint64(len(out) + 1)
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wlog: FilterInstances removed every instance")
	}
	return New(out)
}

// HasActivity returns a predicate selecting instances that executed the
// activity at least once.
func HasActivity(activity string) InstancePredicate {
	return func(records []Record) bool {
		for _, r := range records {
			if r.Activity == activity {
				return true
			}
		}
		return false
	}
}

// Completed returns a predicate selecting instances with an END record.
func Completed() InstancePredicate {
	return func(records []Record) bool {
		return len(records) > 0 && records[len(records)-1].IsEnd()
	}
}

// Project keeps only records whose activity is in the given set (START and
// END records are always kept so the result satisfies Definition 2), then
// renumbers both lsn and is-lsn densely.
//
// Renumbering is-lsn makes surviving records of one instance consecutive:
// a ⊙ pattern on the projection means "adjacent among the projected
// activities", which is precisely the useful reading (e.g. project to
// {Pay, Ship} and ask Pay ⊙ Ship: "no projected activity between them").
// Sequential, choice and parallel semantics are unaffected by renumbering.
func Project(l *Log, activities ...string) (*Log, error) {
	keep := make(map[string]bool, len(activities))
	for _, a := range activities {
		keep[a] = true
	}
	nextSeq := make(map[uint64]uint64)
	var out []Record
	for _, r := range l.Records() {
		if !keep[r.Activity] && !r.IsStart() && !r.IsEnd() {
			continue
		}
		if nextSeq[r.WID] == 0 {
			nextSeq[r.WID] = 1
		}
		r.LSN = uint64(len(out) + 1)
		r.Seq = nextSeq[r.WID]
		nextSeq[r.WID]++
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wlog: Project removed every record")
	}
	return New(out)
}

// Prefix returns the valid log consisting of the first n records (in lsn
// order). A prefix of a valid log is always valid: lsns stay dense and
// every instance's records remain an initial segment.
func Prefix(l *Log, n int) (*Log, error) {
	if n < 1 || n > l.Len() {
		return nil, fmt.Errorf("wlog: Prefix length %d outside [1, %d]", n, l.Len())
	}
	return New(l.Records()[:n])
}

// SplitInstances partitions the log into one single-instance log per
// workflow instance, keyed by wid. Each split log renumbers lsn densely
// but keeps is-lsn, so per-instance queries evaluate identically.
func SplitInstances(l *Log) (map[uint64]*Log, error) {
	out := make(map[uint64]*Log)
	for _, wid := range l.WIDs() {
		records := l.Instance(wid)
		renumbered := make([]Record, len(records))
		for i, r := range records {
			r.LSN = uint64(i + 1)
			renumbered[i] = r
		}
		sub, err := New(renumbered)
		if err != nil {
			return nil, fmt.Errorf("wid %d: %w", wid, err)
		}
		out[wid] = sub
	}
	return out, nil
}

// ActivityHistogram counts records per activity name, descending by count
// (ties broken by name).
func ActivityHistogram(l *Log) []ActivityCount {
	counts := make(map[string]int)
	for _, r := range l.Records() {
		counts[r.Activity]++
	}
	out := make([]ActivityCount, 0, len(counts))
	for name, n := range counts {
		out = append(out, ActivityCount{Activity: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Activity < out[j].Activity
	})
	return out
}

// ActivityCount is one row of ActivityHistogram.
type ActivityCount struct {
	Activity string
	Count    int
}
