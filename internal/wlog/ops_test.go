package wlog

import (
	"testing"
)

// opsLog builds:
//
//	wid 1: START A B END        (complete)
//	wid 2: START B C            (incomplete)
func opsLog(t *testing.T) *Log {
	t.Helper()
	var b Builder
	w1 := b.Start()
	w2 := b.Start()
	for _, step := range []struct {
		wid uint64
		act string
	}{
		{w1, "A"}, {w2, "B"}, {w1, "B"}, {w2, "C"},
	} {
		if err := b.Emit(step.wid, step.act, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.End(w1); err != nil {
		t.Fatal(err)
	}
	return b.MustBuild()
}

func TestMerge(t *testing.T) {
	a := opsLog(t)
	b := opsLog(t)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged log invalid: %v", err)
	}
	if got := len(m.WIDs()); got != 4 {
		t.Errorf("merged instances = %d, want 4", got)
	}
	if m.Len() != a.Len()+b.Len() {
		t.Errorf("merged Len = %d, want %d", m.Len(), a.Len()+b.Len())
	}
	// Inputs untouched.
	if len(a.WIDs()) != 2 || a.Record(0).LSN != 1 {
		t.Error("Merge mutated an input")
	}
	if _, err := Merge(); err == nil {
		t.Error("Merge of nothing: want error")
	}
}

func TestMergePreservesInstanceOrder(t *testing.T) {
	m, err := Merge(opsLog(t), opsLog(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, wid := range m.WIDs() {
		inst := m.Instance(wid)
		for i, r := range inst {
			if r.Seq != uint64(i+1) {
				t.Fatalf("wid %d: is-lsn sequence broken: %v", wid, inst)
			}
		}
	}
}

func TestFilterInstances(t *testing.T) {
	l := opsLog(t)
	complete, err := FilterInstances(l, Completed())
	if err != nil {
		t.Fatal(err)
	}
	if got := complete.WIDs(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Completed filter kept %v", got)
	}
	withC, err := FilterInstances(l, HasActivity("C"))
	if err != nil {
		t.Fatal(err)
	}
	if got := withC.WIDs(); len(got) != 1 || got[0] != 2 {
		t.Errorf("HasActivity(C) kept %v", got)
	}
	if _, err := FilterInstances(l, HasActivity("nope")); err == nil {
		t.Error("filter to nothing: want error")
	}
	if err := withC.Validate(); err != nil {
		t.Errorf("filtered log invalid: %v", err)
	}
}

func TestProject(t *testing.T) {
	l := opsLog(t)
	p, err := Project(l, "B")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("projected log invalid: %v", err)
	}
	// wid 1: START B END; wid 2: START B.
	inst1 := p.Instance(1)
	if len(inst1) != 3 || inst1[1].Activity != "B" || inst1[1].Seq != 2 {
		t.Errorf("Instance(1) = %v", inst1)
	}
	inst2 := p.Instance(2)
	if len(inst2) != 2 || inst2[1].Activity != "B" {
		t.Errorf("Instance(2) = %v", inst2)
	}
	if _, err := Project(l); err != nil {
		t.Errorf("Project to just START/END should still be a valid log: %v", err)
	}
}

func TestPrefix(t *testing.T) {
	l := opsLog(t)
	for n := 1; n <= l.Len(); n++ {
		p, err := Prefix(l, n)
		if err != nil {
			t.Fatalf("Prefix(%d): %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Prefix(%d) invalid: %v", n, err)
		}
		if p.Len() != n {
			t.Fatalf("Prefix(%d).Len = %d", n, p.Len())
		}
	}
	if _, err := Prefix(l, 0); err == nil {
		t.Error("Prefix(0): want error")
	}
	if _, err := Prefix(l, l.Len()+1); err == nil {
		t.Error("Prefix beyond end: want error")
	}
}

func TestSplitInstances(t *testing.T) {
	l := opsLog(t)
	parts, err := SplitInstances(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	for wid, sub := range parts {
		if err := sub.Validate(); err != nil {
			t.Errorf("wid %d: invalid: %v", wid, err)
		}
		if got := sub.WIDs(); len(got) != 1 || got[0] != wid {
			t.Errorf("wid %d: WIDs = %v", wid, got)
		}
		// is-lsn preserved from the original.
		for i, r := range sub.Records() {
			if r.Seq != uint64(i+1) {
				t.Errorf("wid %d: is-lsn not dense: %v", wid, sub.Records())
			}
		}
	}
}

func TestActivityHistogram(t *testing.T) {
	h := ActivityHistogram(opsLog(t))
	// START×2, B×2, A×1, C×1, END×1 — descending by count, ties by name.
	if len(h) != 5 {
		t.Fatalf("histogram = %v", h)
	}
	if h[0].Count != 2 || h[1].Count != 2 {
		t.Errorf("top counts = %v", h[:2])
	}
	if h[0].Activity != "B" || h[1].Activity != "START" {
		t.Errorf("tie order = %v", h[:2])
	}
}
