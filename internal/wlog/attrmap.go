package wlog

import (
	"sort"
	"strings"
)

// AttrMap is the paper's "map": a partial mapping from attribute names A to
// values in D with a finite domain (Section 2). A nil AttrMap is a valid
// empty map, matching the "-" entries of Figure 3.
type AttrMap map[string]Value

// Attrs builds an AttrMap from alternating name/value pairs given as
// name1, v1, name2, v2, ... It panics if an odd number of arguments is
// supplied; it exists for terse test and example construction.
func Attrs(pairs ...any) AttrMap {
	if len(pairs)%2 != 0 {
		panic("wlog.Attrs: odd number of arguments")
	}
	m := make(AttrMap, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("wlog.Attrs: attribute name must be a string")
		}
		switch v := pairs[i+1].(type) {
		case Value:
			m[name] = v
		case string:
			m[name] = String(v)
		case int:
			m[name] = Int(int64(v))
		case int64:
			m[name] = Int(v)
		case float64:
			m[name] = Float(v)
		case bool:
			m[name] = Bool(v)
		default:
			panic("wlog.Attrs: unsupported value type")
		}
	}
	return m
}

// Get returns the value bound to name, or ⊥ when the map does not define it.
func (m AttrMap) Get(name string) Value {
	if v, ok := m[name]; ok {
		return v
	}
	return Undefined()
}

// Has reports whether the map defines name (even if its value is ⊥).
func (m AttrMap) Has(name string) bool {
	_, ok := m[name]
	return ok
}

// Names returns the defined attribute names in sorted order.
func (m AttrMap) Names() []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Clone returns an independent copy of the map. Cloning nil yields nil.
func (m AttrMap) Clone() AttrMap {
	if m == nil {
		return nil
	}
	out := make(AttrMap, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Equal reports whether two maps define the same attributes with equal
// values. nil and the empty map are equal.
func (m AttrMap) Equal(other AttrMap) bool {
	if len(m) != len(other) {
		return false
	}
	for k, v := range m {
		w, ok := other[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// Merge returns a new map containing m overlaid with overrides; attributes
// in overrides win. Neither input is modified.
func (m AttrMap) Merge(overrides AttrMap) AttrMap {
	out := m.Clone()
	if out == nil {
		out = make(AttrMap, len(overrides))
	}
	for k, v := range overrides {
		out[k] = v
	}
	return out
}

// String renders the map as "a=1, b=x" with attributes in sorted order, or
// "-" for an empty map, mirroring the presentation of Figure 3.
func (m AttrMap) String() string {
	if len(m) == 0 {
		return "-"
	}
	var sb strings.Builder
	for i, name := range m.Names() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(name)
		sb.WriteByte('=')
		sb.WriteString(m[name].String())
	}
	return sb.String()
}
