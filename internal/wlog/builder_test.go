package wlog

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBuilderHappyPath(t *testing.T) {
	var b Builder
	w1 := b.Start()
	w2 := b.Start()
	if w1 == w2 {
		t.Fatalf("Start assigned duplicate wid %d", w1)
	}
	if err := b.Emit(w1, "A", nil, Attrs("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Emit(w2, "B", Attrs("x", 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.End(w1); err != nil {
		t.Fatal(err)
	}
	l := b.MustBuild()
	if err := l.Validate(); err != nil {
		t.Fatalf("built log invalid: %v", err)
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d, want 5", l.Len())
	}
	if !l.InstanceComplete(w1) || l.InstanceComplete(w2) {
		t.Error("completion flags wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	var b Builder
	w := b.Start()

	if err := b.Emit(99, "A", nil, nil); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("Emit to unknown wid: %v, want ErrUnknownInstance", err)
	}
	if err := b.End(99); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("End of unknown wid: %v, want ErrUnknownInstance", err)
	}
	if err := b.Emit(w, ActivityStart, nil, nil); !errors.Is(err, ErrReservedActivity) {
		t.Errorf("Emit START: %v, want ErrReservedActivity", err)
	}
	if err := b.Emit(w, ActivityEnd, nil, nil); !errors.Is(err, ErrReservedActivity) {
		t.Errorf("Emit END: %v, want ErrReservedActivity", err)
	}
	if err := b.StartWID(w); !errors.Is(err, ErrDuplicateInstance) {
		t.Errorf("StartWID duplicate: %v, want ErrDuplicateInstance", err)
	}
	if err := b.End(w); err != nil {
		t.Fatal(err)
	}
	if err := b.Emit(w, "A", nil, nil); !errors.Is(err, ErrInstanceEnded) {
		t.Errorf("Emit after END: %v, want ErrInstanceEnded", err)
	}
	if err := b.End(w); !errors.Is(err, ErrInstanceEnded) {
		t.Errorf("double End: %v, want ErrInstanceEnded", err)
	}
}

func TestBuilderStartWIDInterplay(t *testing.T) {
	var b Builder
	if err := b.StartWID(5); err != nil {
		t.Fatal(err)
	}
	// Auto-assignment must skip the taken wid.
	for i := 0; i < 6; i++ {
		w := b.Start()
		if w == 5 {
			t.Fatal("Start reused explicitly started wid 5")
		}
	}
	if _, err := b.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
}

func TestBuilderActive(t *testing.T) {
	var b Builder
	if b.Active(1) {
		t.Error("Active before Start")
	}
	w := b.Start()
	if !b.Active(w) {
		t.Error("not Active after Start")
	}
	if err := b.End(w); err != nil {
		t.Fatal(err)
	}
	if b.Active(w) {
		t.Error("Active after End")
	}
}

func TestBuilderIncrementalBuild(t *testing.T) {
	var b Builder
	w := b.Start()
	l1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Emit(w, "A", nil, nil); err != nil {
		t.Fatal(err)
	}
	l2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if l1.Len() != 1 || l2.Len() != 2 {
		t.Errorf("incremental Build lengths = %d, %d; want 1, 2", l1.Len(), l2.Len())
	}
}

func TestBuilderClonesAttrMaps(t *testing.T) {
	var b Builder
	w := b.Start()
	out := Attrs("x", 1)
	if err := b.Emit(w, "A", nil, out); err != nil {
		t.Fatal(err)
	}
	out["x"] = Int(999) // caller mutates after Emit
	l := b.MustBuild()
	if got := l.Record(1).Out.Get("x"); !got.Equal(Int(1)) {
		t.Errorf("builder shared caller's map: x = %v", got)
	}
}

// TestBuilderRandomOpsAlwaysValid drives the Builder with random operation
// sequences: whatever succeeds must leave a Definition 2-valid log, and the
// builder's errors must be exactly the documented sentinels.
func TestBuilderRandomOpsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 100; trial++ {
		var b Builder
		var wids []uint64
		for op := 0; op < 40; op++ {
			switch rng.Intn(5) {
			case 0:
				wids = append(wids, b.Start())
			case 1:
				if err := b.StartWID(uint64(rng.Intn(8) + 1)); err != nil {
					if !errors.Is(err, ErrDuplicateInstance) {
						t.Fatalf("StartWID: unexpected error %v", err)
					}
				} else {
					// Track it so Emit/End below can hit it.
					wids = append(wids, uint64(rng.Intn(8)+1))
				}
			case 2, 3:
				wid := uint64(rng.Intn(10) + 1)
				err := b.Emit(wid, "A", nil, nil)
				if err != nil && !errors.Is(err, ErrUnknownInstance) && !errors.Is(err, ErrInstanceEnded) {
					t.Fatalf("Emit: unexpected error %v", err)
				}
			case 4:
				wid := uint64(rng.Intn(10) + 1)
				err := b.End(wid)
				if err != nil && !errors.Is(err, ErrUnknownInstance) && !errors.Is(err, ErrInstanceEnded) {
					t.Fatalf("End: unexpected error %v", err)
				}
			}
		}
		if b.Len() == 0 {
			continue
		}
		l, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: Build failed: %v", trial, err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("trial %d: built log invalid: %v", trial, err)
		}
	}
}
