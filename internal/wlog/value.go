// Package wlog implements the workflow-log data model of "Querying Workflow
// Logs" (Tang, Mackey, Su): log records (Definition 1), attribute maps over
// the value domain D, logs with the four validity conditions of Definition 2,
// and builders that make it convenient to assemble valid logs.
//
// The package is purely a data model: it knows nothing about patterns or
// query evaluation. Serialization lives in internal/logio; pattern matching
// in internal/core.
package wlog

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value. The paper's value domain D is
// an abstract countably infinite set; we realize it as the disjoint union of
// strings, integers, floats and booleans, plus the distinguished "undefined"
// value ⊥ from Section 2.
type Kind int

// Value kinds. KindUndefined is the paper's ⊥: an attribute that exists in a
// map but carries no defined value.
const (
	KindUndefined Kind = iota + 1
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single element of the value domain D, or ⊥ (undefined).
// The zero Value is ⊥.
//
// Values are small immutable records; they are passed and compared by value.
type Value struct {
	kind Kind
	str  string
	num  int64
	flt  float64
	b    bool
}

// Undefined returns the ⊥ value.
func Undefined() Value { return Value{kind: KindUndefined} }

// String wraps a Go string as a Value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int wraps an int64 as a Value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float wraps a float64 as a Value.
func Float(f float64) Value { return Value{kind: KindFloat, flt: f} }

// Bool wraps a bool as a Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the dynamic kind of v. The zero Value reports KindUndefined.
func (v Value) Kind() Kind {
	if v.kind == 0 {
		return KindUndefined
	}
	return v.kind
}

// IsUndefined reports whether v is ⊥.
func (v Value) IsUndefined() bool { return v.Kind() == KindUndefined }

// Str returns the string payload and whether v is a string.
func (v Value) Str() (string, bool) { return v.str, v.kind == KindString }

// IntVal returns the integer payload and whether v is an int.
func (v Value) IntVal() (int64, bool) { return v.num, v.kind == KindInt }

// FloatVal returns the float payload and whether v is a float.
func (v Value) FloatVal() (float64, bool) { return v.flt, v.kind == KindFloat }

// BoolVal returns the bool payload and whether v is a bool.
func (v Value) BoolVal() (bool, bool) { return v.b, v.kind == KindBool }

// Numeric reports whether v can be read as a number (int or float), and if
// so returns it widened to float64.
func (v Value) Numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.num), true
	case KindFloat:
		return v.flt, true
	default:
		return 0, false
	}
}

// Equal reports whether two values are identical elements of D. Values of
// different kinds are never equal, with one exception: an int and a float
// representing the same real number are equal (so Int(5) == Float(5.0)),
// which keeps round-tripping through text formats from changing semantics.
func (v Value) Equal(w Value) bool {
	if v.Kind() == w.Kind() {
		switch v.Kind() {
		case KindUndefined:
			return true
		case KindString:
			return v.str == w.str
		case KindInt:
			return v.num == w.num
		case KindFloat:
			return v.flt == w.flt
		case KindBool:
			return v.b == w.b
		}
	}
	vn, vok := v.Numeric()
	wn, wok := w.Numeric()
	return vok && wok && vn == wn
}

// Compare orders two values. It returns a negative number, zero, or a
// positive number as v sorts before, equal to, or after w, and false when
// the two values are incomparable (different non-numeric kinds, or either
// side boolean-vs-non-boolean, etc.).
//
// Rules: ⊥ sorts before everything and equals only ⊥; numbers compare
// numerically across int/float; strings compare lexicographically; booleans
// compare with false < true.
func (v Value) Compare(w Value) (int, bool) {
	vk, wk := v.Kind(), w.Kind()
	if vk == KindUndefined || wk == KindUndefined {
		switch {
		case vk == wk:
			return 0, true
		case vk == KindUndefined:
			return -1, true
		default:
			return 1, true
		}
	}
	if vn, ok := v.Numeric(); ok {
		wn, ok := w.Numeric()
		if !ok {
			return 0, false
		}
		switch {
		case vn < wn:
			return -1, true
		case vn > wn:
			return 1, true
		default:
			return 0, true
		}
	}
	if vk != wk {
		return 0, false
	}
	switch vk {
	case KindString:
		return strings.Compare(v.str, w.str), true
	case KindBool:
		switch {
		case v.b == w.b:
			return 0, true
		case !v.b:
			return -1, true
		default:
			return 1, true
		}
	default:
		return 0, false
	}
}

// String renders the value in the textual form accepted by ParseValue.
// Strings that could be mistaken for other literals are quoted.
func (v Value) String() string {
	switch v.Kind() {
	case KindUndefined:
		return "_|_"
	case KindString:
		if needsQuoting(v.str) {
			return strconv.Quote(v.str)
		}
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.kind))
	}
}

// needsQuoting reports whether a string rendered bare would be re-parsed as
// a different kind of literal or break the k=v syntax of the compact codec.
func needsQuoting(s string) bool {
	if s == "" || s == "_|_" || s == "true" || s == "false" {
		return true
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return true
	}
	for _, r := range s {
		switch r {
		case '"', '=', ',', ';', '\t', '\n', '\r', ' ':
			return true
		}
	}
	return false
}

// ParseValue reads the textual form produced by Value.String: "_|_" for ⊥,
// quoted Go strings, integer and float literals, "true"/"false", and any
// other token as a bare string.
func ParseValue(s string) (Value, error) {
	switch {
	case s == "_|_":
		return Undefined(), nil
	case s == "true":
		return Bool(true), nil
	case s == "false":
		return Bool(false), nil
	}
	if len(s) >= 2 && s[0] == '"' {
		unq, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("wlog: malformed quoted value %q: %w", s, err)
		}
		return String(unq), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f), nil
	}
	return String(s), nil
}
