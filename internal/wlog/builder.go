package wlog

import (
	"errors"
	"fmt"
)

// Builder assembles a valid Log incrementally. It assigns log sequence
// numbers in emission order and instance-specific sequence numbers per
// instance, and enforces the Definition 2 discipline as records are added
// (so violations surface at the offending call, not at Build time).
//
// The zero Builder is ready to use.
type Builder struct {
	records []Record
	nextSeq map[uint64]uint64 // wid -> next is-lsn (0 when instance unknown)
	ended   map[uint64]bool
	nextWID uint64
}

// Errors reported by Builder operations.
var (
	// ErrUnknownInstance is returned when emitting to a wid with no prior
	// START record.
	ErrUnknownInstance = errors.New("wlog: unknown workflow instance")
	// ErrInstanceEnded is returned when emitting to a wid after its END.
	ErrInstanceEnded = errors.New("wlog: workflow instance already ended")
	// ErrDuplicateInstance is returned when starting a wid twice.
	ErrDuplicateInstance = errors.New("wlog: workflow instance already started")
	// ErrReservedActivity is returned when Emit is called with START or END.
	ErrReservedActivity = errors.New("wlog: reserved activity name")
)

func (b *Builder) ensure() {
	if b.nextSeq == nil {
		b.nextSeq = make(map[uint64]uint64)
		b.ended = make(map[uint64]bool)
		b.nextWID = 1
	}
}

// Start begins a new workflow instance with an automatically assigned wid,
// emitting its START record, and returns the wid.
func (b *Builder) Start() uint64 {
	b.ensure()
	for b.nextSeq[b.nextWID] != 0 {
		b.nextWID++
	}
	wid := b.nextWID
	b.nextWID++
	if err := b.StartWID(wid); err != nil {
		// Unreachable: the loop above guarantees wid is fresh.
		panic(err)
	}
	return wid
}

// StartWID begins a workflow instance with a caller-chosen wid.
func (b *Builder) StartWID(wid uint64) error {
	b.ensure()
	if b.nextSeq[wid] != 0 {
		return fmt.Errorf("%w: wid=%d", ErrDuplicateInstance, wid)
	}
	b.records = append(b.records, Record{
		LSN:      uint64(len(b.records) + 1),
		WID:      wid,
		Seq:      1,
		Activity: ActivityStart,
	})
	b.nextSeq[wid] = 2
	return nil
}

// Emit appends an activity record for the given instance. The activity name
// must not be START or END; use Start/End for those.
func (b *Builder) Emit(wid uint64, activity string, in, out AttrMap) error {
	b.ensure()
	if activity == ActivityStart || activity == ActivityEnd {
		return fmt.Errorf("%w: %q", ErrReservedActivity, activity)
	}
	return b.emit(wid, activity, in, out)
}

// End appends the END record for the given instance; no further records may
// be emitted for it.
func (b *Builder) End(wid uint64) error {
	b.ensure()
	if err := b.emit(wid, ActivityEnd, nil, nil); err != nil {
		return err
	}
	b.ended[wid] = true
	return nil
}

func (b *Builder) emit(wid uint64, activity string, in, out AttrMap) error {
	seq := b.nextSeq[wid]
	if seq == 0 {
		return fmt.Errorf("%w: wid=%d", ErrUnknownInstance, wid)
	}
	if b.ended[wid] {
		return fmt.Errorf("%w: wid=%d", ErrInstanceEnded, wid)
	}
	b.records = append(b.records, Record{
		LSN:      uint64(len(b.records) + 1),
		WID:      wid,
		Seq:      seq,
		Activity: activity,
		In:       in.Clone(),
		Out:      out.Clone(),
	})
	b.nextSeq[wid] = seq + 1
	return nil
}

// Len returns the number of records emitted so far.
func (b *Builder) Len() int { return len(b.records) }

// Active reports whether the instance has started and not yet ended.
func (b *Builder) Active(wid uint64) bool {
	b.ensure()
	return b.nextSeq[wid] != 0 && !b.ended[wid]
}

// Build validates and returns the accumulated log. The Builder remains
// usable: further emissions extend the same sequence, and a later Build
// returns the longer log.
func (b *Builder) Build() (*Log, error) {
	return New(b.records)
}

// MustBuild is Build, panicking on error. Builder-produced record streams
// satisfy Definition 2 by construction, so a panic indicates a bug.
func (b *Builder) MustBuild() *Log {
	l, err := b.Build()
	if err != nil {
		panic(err)
	}
	return l
}
