package wlog

import (
	"testing"
)

func TestAttrsConstructor(t *testing.T) {
	m := Attrs("s", "str", "i", 1, "i64", int64(2), "f", 1.5, "b", true, "v", Int(9))
	checks := []struct {
		name string
		want Value
	}{
		{"s", String("str")},
		{"i", Int(1)},
		{"i64", Int(2)},
		{"f", Float(1.5)},
		{"b", Bool(true)},
		{"v", Int(9)},
	}
	for _, c := range checks {
		if got := m.Get(c.name); !got.Equal(c.want) {
			t.Errorf("Get(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAttrsPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"odd arguments", func() { Attrs("a") }},
		{"non-string name", func() { Attrs(1, 2) }},
		{"unsupported value", func() { Attrs("a", struct{}{}) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestAttrMapGetHas(t *testing.T) {
	m := Attrs("x", 1)
	if !m.Has("x") || m.Has("y") {
		t.Error("Has wrong")
	}
	if got := m.Get("y"); !got.IsUndefined() {
		t.Errorf("Get on missing = %v, want undefined", got)
	}
	var nilMap AttrMap
	if !nilMap.Get("x").IsUndefined() || nilMap.Has("x") {
		t.Error("nil map should behave as empty")
	}
}

func TestAttrMapNames(t *testing.T) {
	m := Attrs("c", 1, "a", 2, "b", 3)
	names := m.Names()
	want := []string{"a", "b", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestAttrMapCloneIndependence(t *testing.T) {
	m := Attrs("x", 1)
	c := m.Clone()
	c["x"] = Int(2)
	if !m.Get("x").Equal(Int(1)) {
		t.Error("Clone shares storage")
	}
	var nilMap AttrMap
	if nilMap.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestAttrMapEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b AttrMap
		want bool
	}{
		{"both nil", nil, nil, true},
		{"nil vs empty", nil, AttrMap{}, true},
		{"same", Attrs("x", 1), Attrs("x", 1), true},
		{"cross-kind numeric", Attrs("x", 1), Attrs("x", 1.0), true},
		{"different value", Attrs("x", 1), Attrs("x", 2), false},
		{"different keys", Attrs("x", 1), Attrs("y", 1), false},
		{"subset", Attrs("x", 1), Attrs("x", 1, "y", 2), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAttrMapMerge(t *testing.T) {
	base := Attrs("x", 1, "y", 2)
	over := Attrs("y", 20, "z", 30)
	merged := base.Merge(over)
	if !merged.Equal(Attrs("x", 1, "y", 20, "z", 30)) {
		t.Errorf("Merge = %v", merged)
	}
	if !base.Equal(Attrs("x", 1, "y", 2)) {
		t.Error("Merge mutated base")
	}
	var nilMap AttrMap
	if got := nilMap.Merge(Attrs("a", 1)); !got.Equal(Attrs("a", 1)) {
		t.Errorf("nil.Merge = %v", got)
	}
}

func TestAttrMapString(t *testing.T) {
	if got := (AttrMap{}).String(); got != "-" {
		t.Errorf("empty map String() = %q, want -", got)
	}
	if got := Attrs("b", 2, "a", 1).String(); got != "a=1, b=2" {
		t.Errorf("String() = %q, want sorted a=1, b=2", got)
	}
}

func TestRecordHelpers(t *testing.T) {
	start := Record{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart}
	end := Record{LSN: 2, WID: 1, Seq: 2, Activity: ActivityEnd}
	task := Record{LSN: 3, WID: 1, Seq: 3, Activity: "A", In: Attrs("x", 1)}
	if !start.IsStart() || start.IsEnd() {
		t.Error("IsStart/IsEnd wrong for START")
	}
	if !end.IsEnd() || end.IsStart() {
		t.Error("IsStart/IsEnd wrong for END")
	}

	clone := task.Clone()
	clone.In["x"] = Int(99)
	if !task.In.Get("x").Equal(Int(1)) {
		t.Error("Record.Clone shares attribute maps")
	}

	if !task.Equal(task.Clone()) {
		t.Error("record not Equal to its clone")
	}
	other := task
	other.Activity = "B"
	if task.Equal(other) {
		t.Error("records with different activities Equal")
	}
}
