package wlog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrInvalidLog is the sentinel wrapped by every Definition 2 violation
// reported by Validate, so callers can test errors.Is(err, ErrInvalidLog).
var ErrInvalidLog = errors.New("invalid workflow log")

// Condition identifies which of the four validity conditions of Definition 2
// a record violates.
type Condition int

// The four conditions of Definition 2.
const (
	// CondDenseLSN: the log sequence numbers are exactly 1..|L| (a bijection
	// with the first |L| natural numbers).
	CondDenseLSN Condition = iota + 1
	// CondStartFirst: is-lsn(l) = 1 iff act(l) = START.
	CondStartFirst
	// CondConsecutiveSeq: within an instance, is-lsn values are consecutive
	// and each non-first record is preceded (in lsn order) by its predecessor.
	CondConsecutiveSeq
	// CondEndLast: no record of an instance follows its END record.
	CondEndLast
)

// String names the condition as cited in the paper.
func (c Condition) String() string {
	switch c {
	case CondDenseLSN:
		return "condition 1 (dense log sequence numbers)"
	case CondStartFirst:
		return "condition 2 (START iff is-lsn=1)"
	case CondConsecutiveSeq:
		return "condition 3 (consecutive instance sequence numbers)"
	case CondEndLast:
		return "condition 4 (END is last per instance)"
	default:
		return fmt.Sprintf("condition %d", int(c))
	}
}

// ValidationError describes a single Definition 2 violation.
type ValidationError struct {
	Cond Condition
	LSN  uint64 // offending record's lsn (0 when not tied to one record)
	Msg  string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if e.LSN != 0 {
		return fmt.Sprintf("wlog: %s violated at lsn=%d: %s", e.Cond, e.LSN, e.Msg)
	}
	return fmt.Sprintf("wlog: %s violated: %s", e.Cond, e.Msg)
}

// Unwrap lets errors.Is match ErrInvalidLog.
func (e *ValidationError) Unwrap() error { return ErrInvalidLog }

// Log is a workflow log per Definition 2: a finite set of log records. The
// in-memory representation keeps the records sorted by lsn, realizing the
// paper's convention of viewing a log as a sequence in ascending lsn order.
//
// A Log is immutable once constructed; all mutation goes through Builder or
// Append (which returns a new Log).
type Log struct {
	records []Record
}

// New constructs a Log from records (in any order), sorts them by lsn, and
// validates every Definition 2 condition. The input slice is copied.
func New(records []Record) (*Log, error) {
	l := newUnchecked(records)
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// MustNew is New, panicking on validation failure. For tests and fixtures.
func MustNew(records []Record) *Log {
	l, err := New(records)
	if err != nil {
		panic(err)
	}
	return l
}

// newUnchecked copies and sorts the records without validating.
func newUnchecked(records []Record) *Log {
	rs := make([]Record, len(records))
	copy(rs, records)
	sort.Slice(rs, func(i, j int) bool { return rs[i].LSN < rs[j].LSN })
	return &Log{records: rs}
}

// Len returns |L|, the number of log records.
func (l *Log) Len() int { return len(l.records) }

// Record returns the i-th record in lsn order (0-based).
func (l *Log) Record(i int) Record { return l.records[i] }

// Records returns a copy of the records in ascending lsn order.
func (l *Log) Records() []Record {
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// ByLSN returns the record with the given log sequence number. Valid logs
// have dense lsns starting at 1, so this is a direct index.
func (l *Log) ByLSN(lsn uint64) (Record, bool) {
	if lsn == 0 || lsn > uint64(len(l.records)) {
		return Record{}, false
	}
	r := l.records[lsn-1]
	if r.LSN != lsn { // defensive: only possible on unchecked logs
		for _, cand := range l.records {
			if cand.LSN == lsn {
				return cand, true
			}
		}
		return Record{}, false
	}
	return r, true
}

// WIDs returns the distinct workflow instance ids present in the log, in
// ascending order.
func (l *Log) WIDs() []uint64 {
	seen := make(map[uint64]struct{})
	var ids []uint64
	for _, r := range l.records {
		if _, ok := seen[r.WID]; !ok {
			seen[r.WID] = struct{}{}
			ids = append(ids, r.WID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Instance returns the records of one workflow instance in ascending is-lsn
// order (which coincides with lsn order in a valid log).
func (l *Log) Instance(wid uint64) []Record {
	var out []Record
	for _, r := range l.records {
		if r.WID == wid {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// InstanceComplete reports whether the instance has an END record.
func (l *Log) InstanceComplete(wid uint64) bool {
	for _, r := range l.records {
		if r.WID == wid && r.IsEnd() {
			return true
		}
	}
	return false
}

// Activities returns the distinct activity names appearing in the log, in
// sorted order (START/END included).
func (l *Log) Activities() []string {
	seen := make(map[string]struct{})
	var names []string
	for _, r := range l.records {
		if _, ok := seen[r.Activity]; !ok {
			seen[r.Activity] = struct{}{}
			names = append(names, r.Activity)
		}
	}
	sort.Strings(names)
	return names
}

// Append returns a new Log consisting of l followed by more records; the
// result is validated. l itself is unchanged.
func (l *Log) Append(more ...Record) (*Log, error) {
	rs := make([]Record, 0, len(l.records)+len(more))
	rs = append(rs, l.records...)
	rs = append(rs, more...)
	return New(rs)
}

// Validate checks the four conditions of Definition 2 and returns the first
// violation found (as a *ValidationError wrapping ErrInvalidLog), or nil.
func (l *Log) Validate() error {
	// Condition 1: lsn values are a bijection with 1..|L|. Records are kept
	// sorted by lsn, so this reduces to records[i].LSN == i+1.
	for i, r := range l.records {
		if r.LSN != uint64(i+1) {
			return &ValidationError{
				Cond: CondDenseLSN,
				LSN:  r.LSN,
				Msg:  fmt.Sprintf("expected lsn %d at position %d", i+1, i),
			}
		}
	}

	type instState struct {
		nextSeq uint64 // is-lsn the next record of this instance must carry
		ended   bool
	}
	states := make(map[uint64]*instState)

	for _, r := range l.records {
		st := states[r.WID]
		if st == nil {
			st = &instState{nextSeq: 1}
			states[r.WID] = st
		}
		// Condition 4: nothing follows END within an instance.
		if st.ended {
			return &ValidationError{
				Cond: CondEndLast,
				LSN:  r.LSN,
				Msg:  fmt.Sprintf("record for wid=%d after its END record", r.WID),
			}
		}
		// Condition 2: is-lsn = 1 iff START.
		if (r.Seq == 1) != r.IsStart() {
			return &ValidationError{
				Cond: CondStartFirst,
				LSN:  r.LSN,
				Msg: fmt.Sprintf("is-lsn=%d with activity %q (START iff is-lsn=1)",
					r.Seq, r.Activity),
			}
		}
		// Condition 3: is-lsn values are consecutive, in lsn order.
		if r.Seq != st.nextSeq {
			return &ValidationError{
				Cond: CondConsecutiveSeq,
				LSN:  r.LSN,
				Msg: fmt.Sprintf("wid=%d expected is-lsn %d, found %d",
					r.WID, st.nextSeq, r.Seq),
			}
		}
		// START/END records must carry empty maps (Section 2).
		if r.IsStart() || r.IsEnd() {
			if len(r.In) != 0 || len(r.Out) != 0 {
				return &ValidationError{
					Cond: CondStartFirst,
					LSN:  r.LSN,
					Msg:  fmt.Sprintf("%s record with non-empty attribute maps", r.Activity),
				}
			}
		}
		st.nextSeq++
		if r.IsEnd() {
			st.ended = true
		}
	}
	return nil
}

// Equal reports whether two logs contain equal records in the same order.
func (l *Log) Equal(other *Log) bool {
	if l.Len() != other.Len() {
		return false
	}
	for i := range l.records {
		if !l.records[i].Equal(other.records[i]) {
			return false
		}
	}
	return true
}

// String renders the log as a Figure 3-style table.
func (l *Log) String() string {
	var sb strings.Builder
	sb.WriteString("lsn\twid\tis-lsn\tactivity\tαin\tαout\n")
	for _, r := range l.records {
		fmt.Fprintf(&sb, "%d\t%d\t%d\t%s\t%s\t%s\n",
			r.LSN, r.WID, r.Seq, r.Activity, r.In, r.Out)
	}
	return sb.String()
}
