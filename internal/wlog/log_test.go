package wlog

import (
	"errors"
	"strings"
	"testing"
)

// tinyLog returns a small two-instance valid log:
//
//	lsn 1: wid 1 START
//	lsn 2: wid 2 START
//	lsn 3: wid 1 A
//	lsn 4: wid 2 B
//	lsn 5: wid 1 END
func tinyLog(t *testing.T) *Log {
	t.Helper()
	l, err := New([]Record{
		{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart},
		{LSN: 2, WID: 2, Seq: 1, Activity: ActivityStart},
		{LSN: 3, WID: 1, Seq: 2, Activity: "A", Out: Attrs("x", 1)},
		{LSN: 4, WID: 2, Seq: 2, Activity: "B"},
		{LSN: 5, WID: 1, Seq: 3, Activity: ActivityEnd},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func TestNewSortsByLSN(t *testing.T) {
	l, err := New([]Record{
		{LSN: 2, WID: 1, Seq: 2, Activity: "A"},
		{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if l.Record(0).LSN != 1 || l.Record(1).LSN != 2 {
		t.Errorf("records not sorted: %v", l.Records())
	}
}

func TestValidateViolations(t *testing.T) {
	tests := []struct {
		name string
		recs []Record
		cond Condition
	}{
		{
			name: "gap in lsn",
			recs: []Record{
				{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart},
				{LSN: 3, WID: 1, Seq: 2, Activity: "A"},
			},
			cond: CondDenseLSN,
		},
		{
			name: "duplicate lsn",
			recs: []Record{
				{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart},
				{LSN: 1, WID: 2, Seq: 1, Activity: ActivityStart},
			},
			cond: CondDenseLSN,
		},
		{
			name: "lsn starts at zero",
			recs: []Record{
				{LSN: 0, WID: 1, Seq: 1, Activity: ActivityStart},
			},
			cond: CondDenseLSN,
		},
		{
			name: "first record not START",
			recs: []Record{
				{LSN: 1, WID: 1, Seq: 1, Activity: "A"},
			},
			cond: CondStartFirst,
		},
		{
			name: "START in the middle",
			recs: []Record{
				{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart},
				{LSN: 2, WID: 1, Seq: 2, Activity: ActivityStart},
			},
			cond: CondStartFirst,
		},
		{
			name: "START with attributes",
			recs: []Record{
				{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart, Out: Attrs("x", 1)},
			},
			cond: CondStartFirst,
		},
		{
			name: "is-lsn gap within instance",
			recs: []Record{
				{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart},
				{LSN: 2, WID: 1, Seq: 3, Activity: "A"},
			},
			cond: CondConsecutiveSeq,
		},
		{
			name: "is-lsn repeats within instance",
			recs: []Record{
				{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart},
				{LSN: 2, WID: 1, Seq: 2, Activity: "A"},
				{LSN: 3, WID: 1, Seq: 2, Activity: "B"},
			},
			cond: CondConsecutiveSeq,
		},
		{
			name: "record after END",
			recs: []Record{
				{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart},
				{LSN: 2, WID: 1, Seq: 2, Activity: ActivityEnd},
				{LSN: 3, WID: 1, Seq: 3, Activity: "A"},
			},
			cond: CondEndLast,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.recs)
			if err == nil {
				t.Fatal("New: want validation error, got nil")
			}
			if !errors.Is(err, ErrInvalidLog) {
				t.Errorf("error %v does not wrap ErrInvalidLog", err)
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("error %v is not a *ValidationError", err)
			}
			if verr.Cond != tt.cond {
				t.Errorf("violated %v, want %v", verr.Cond, tt.cond)
			}
		})
	}
}

func TestValidLogsWithInterleaving(t *testing.T) {
	// Three interleaved instances, one never completed — mirrors Figure 3's
	// shape where instances run concurrently and wid 3 has no END.
	recs := []Record{
		{LSN: 1, WID: 1, Seq: 1, Activity: ActivityStart},
		{LSN: 2, WID: 2, Seq: 1, Activity: ActivityStart},
		{LSN: 3, WID: 1, Seq: 2, Activity: "A"},
		{LSN: 4, WID: 3, Seq: 1, Activity: ActivityStart},
		{LSN: 5, WID: 2, Seq: 2, Activity: "A"},
		{LSN: 6, WID: 1, Seq: 3, Activity: ActivityEnd},
		{LSN: 7, WID: 2, Seq: 3, Activity: "B"},
		{LSN: 8, WID: 2, Seq: 4, Activity: ActivityEnd},
	}
	l, err := New(recs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := l.WIDs(); len(got) != 3 {
		t.Errorf("WIDs() = %v, want 3 instances", got)
	}
	if !l.InstanceComplete(1) || !l.InstanceComplete(2) || l.InstanceComplete(3) {
		t.Error("InstanceComplete: want 1,2 complete and 3 incomplete")
	}
}

func TestLogAccessors(t *testing.T) {
	l := tinyLog(t)
	if l.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", l.Len())
	}
	r, ok := l.ByLSN(3)
	if !ok || r.Activity != "A" {
		t.Errorf("ByLSN(3) = %v, %v", r, ok)
	}
	if _, ok := l.ByLSN(0); ok {
		t.Error("ByLSN(0) should miss")
	}
	if _, ok := l.ByLSN(6); ok {
		t.Error("ByLSN(6) should miss")
	}

	inst := l.Instance(1)
	if len(inst) != 3 || inst[0].Seq != 1 || inst[2].Seq != 3 {
		t.Errorf("Instance(1) = %v", inst)
	}
	if got := l.Instance(99); len(got) != 0 {
		t.Errorf("Instance(99) = %v, want empty", got)
	}

	acts := l.Activities()
	want := []string{"A", "B", ActivityEnd, ActivityStart}
	if len(acts) != len(want) {
		t.Fatalf("Activities() = %v, want %v", acts, want)
	}
	for i := range want {
		if acts[i] != want[i] {
			t.Errorf("Activities()[%d] = %q, want %q", i, acts[i], want[i])
		}
	}
}

func TestLogRecordsIsACopy(t *testing.T) {
	l := tinyLog(t)
	rs := l.Records()
	rs[0].Activity = "MUTATED"
	if l.Record(0).Activity == "MUTATED" {
		t.Error("Records() shares memory with the log")
	}
}

func TestLogAppend(t *testing.T) {
	l := tinyLog(t)
	l2, err := l.Append(Record{LSN: 6, WID: 2, Seq: 3, Activity: ActivityEnd})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if l2.Len() != 6 || l.Len() != 5 {
		t.Errorf("Append mutated receiver or lost records: %d, %d", l.Len(), l2.Len())
	}
	if _, err := l.Append(Record{LSN: 9, WID: 2, Seq: 3, Activity: "A"}); err == nil {
		t.Error("Append with bad lsn: want error")
	}
}

func TestLogEqual(t *testing.T) {
	a := tinyLog(t)
	b := tinyLog(t)
	if !a.Equal(b) {
		t.Error("identical logs not Equal")
	}
	c, err := a.Append(Record{LSN: 6, WID: 2, Seq: 3, Activity: ActivityEnd})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("logs of different length Equal")
	}
}

func TestLogString(t *testing.T) {
	s := tinyLog(t).String()
	for _, want := range []string{"lsn", "START", "A", "x=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestConditionString(t *testing.T) {
	for c := CondDenseLSN; c <= CondEndLast; c++ {
		if s := c.String(); !strings.HasPrefix(s, "condition") {
			t.Errorf("Condition(%d).String() = %q", c, s)
		}
	}
	if s := Condition(99).String(); s != "condition 99" {
		t.Errorf("unknown condition = %q", s)
	}
}
