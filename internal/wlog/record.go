package wlog

import (
	"fmt"
)

// Reserved activity names for the two special log records of Section 2:
// every instance's first record is a START record and a completed instance's
// last record is an END record. Both carry empty input and output maps.
const (
	ActivityStart = "START"
	ActivityEnd   = "END"
)

// Record is a log record per Definition 1: the tuple
// (lsn, wid, is-lsn, t, αin, αout).
//
// Field names follow the paper's accessor functions: LSN is lsn(l), WID is
// wid(l), Seq is the instance-specific log sequence number is-lsn(l),
// Activity is act(l), In is αin(l) and Out is αout(l).
type Record struct {
	// LSN is the global log sequence number, unique and dense across the log.
	LSN uint64
	// WID identifies the workflow instance (enactment) the record belongs to.
	WID uint64
	// Seq is the instance-specific log sequence number: dense and starting
	// at 1 within each workflow instance ("is-lsn" in the paper).
	Seq uint64
	// Activity is the activity name t ∈ T executed by this step.
	Activity string
	// In is the input map αin over the attributes read by the activity.
	In AttrMap
	// Out is the output map αout over the attributes written by the activity.
	Out AttrMap
}

// IsStart reports whether the record is a START record.
func (r Record) IsStart() bool { return r.Activity == ActivityStart }

// IsEnd reports whether the record is an END record.
func (r Record) IsEnd() bool { return r.Activity == ActivityEnd }

// Clone returns a deep copy of the record (attribute maps included).
func (r Record) Clone() Record {
	r.In = r.In.Clone()
	r.Out = r.Out.Clone()
	return r
}

// Equal reports whether two records agree on every component, with attribute
// maps compared by value.
func (r Record) Equal(other Record) bool {
	return r.LSN == other.LSN &&
		r.WID == other.WID &&
		r.Seq == other.Seq &&
		r.Activity == other.Activity &&
		r.In.Equal(other.In) &&
		r.Out.Equal(other.Out)
}

// String renders the record as a single Figure 3-style row.
func (r Record) String() string {
	return fmt.Sprintf("(lsn=%d wid=%d is-lsn=%d %s in:[%s] out:[%s])",
		r.LSN, r.WID, r.Seq, r.Activity, r.In, r.Out)
}
