package wlog

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		want Kind
	}{
		{"zero value is undefined", Value{}, KindUndefined},
		{"explicit undefined", Undefined(), KindUndefined},
		{"string", String("x"), KindString},
		{"empty string is still a string", String(""), KindString},
		{"int", Int(7), KindInt},
		{"float", Float(2.5), KindFloat},
		{"bool", Bool(true), KindBool},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.want {
				t.Errorf("Kind() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValueAccessors(t *testing.T) {
	if s, ok := String("hi").Str(); !ok || s != "hi" {
		t.Errorf("Str() = %q, %v", s, ok)
	}
	if _, ok := Int(1).Str(); ok {
		t.Error("Str() on int should report false")
	}
	if i, ok := Int(-3).IntVal(); !ok || i != -3 {
		t.Errorf("IntVal() = %d, %v", i, ok)
	}
	if f, ok := Float(1.5).FloatVal(); !ok || f != 1.5 {
		t.Errorf("FloatVal() = %g, %v", f, ok)
	}
	if b, ok := Bool(true).BoolVal(); !ok || !b {
		t.Errorf("BoolVal() = %v, %v", b, ok)
	}
	if !Undefined().IsUndefined() {
		t.Error("Undefined().IsUndefined() = false")
	}
}

func TestValueNumeric(t *testing.T) {
	tests := []struct {
		name   string
		v      Value
		want   float64
		wantOK bool
	}{
		{"int widens", Int(4), 4, true},
		{"float passes", Float(0.25), 0.25, true},
		{"string is not numeric", String("4"), 0, false},
		{"bool is not numeric", Bool(false), 0, false},
		{"undefined is not numeric", Undefined(), 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.v.Numeric()
			if ok != tt.wantOK || got != tt.want {
				t.Errorf("Numeric() = %g, %v; want %g, %v", got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"same strings", String("a"), String("a"), true},
		{"different strings", String("a"), String("b"), false},
		{"same ints", Int(5), Int(5), true},
		{"int vs equal float", Int(5), Float(5), true},
		{"float vs equal int", Float(5), Int(5), true},
		{"int vs unequal float", Int(5), Float(5.5), false},
		{"string five vs int five", String("5"), Int(5), false},
		{"undefined vs undefined", Undefined(), Undefined(), true},
		{"undefined vs zero int", Undefined(), Int(0), false},
		{"bools", Bool(true), Bool(true), true},
		{"bool vs int", Bool(true), Int(1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("Equal not symmetric: reversed = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Value
		want   int
		wantOK bool
	}{
		{"ints", Int(1), Int(2), -1, true},
		{"int float cross", Int(3), Float(2.5), 1, true},
		{"equal cross", Float(2), Int(2), 0, true},
		{"strings", String("a"), String("b"), -1, true},
		{"string vs int incomparable", String("a"), Int(1), 0, false},
		{"bools", Bool(false), Bool(true), -1, true},
		{"bool vs string incomparable", Bool(true), String("true"), 0, false},
		{"undefined below all", Undefined(), Int(-100), -1, true},
		{"all above undefined", String(""), Undefined(), 1, true},
		{"undefined equal undefined", Undefined(), Undefined(), 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.a.Compare(tt.b)
			if ok != tt.wantOK {
				t.Fatalf("Compare ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && sign(got) != tt.want {
				t.Errorf("Compare = %d, want sign %d", got, tt.want)
			}
		})
	}
}

func sign(i int) int {
	switch {
	case i < 0:
		return -1
	case i > 0:
		return 1
	default:
		return 0
	}
}

func TestValueStringParseRoundTrip(t *testing.T) {
	values := []Value{
		Undefined(),
		String("hospital"),
		String("Public Hospital"), // contains a space: must quote
		String(""),
		String("true"),  // would parse as bool if unquoted
		String("123"),   // would parse as int if unquoted
		String("1.5e3"), // would parse as float if unquoted
		String("_|_"),   // would parse as undefined if unquoted
		String(`with "quotes" and, commas`),
		Int(0),
		Int(-42),
		Int(1 << 40),
		Float(0.5),
		Float(-3.25),
		Bool(true),
		Bool(false),
	}
	for _, v := range values {
		t.Run(v.String(), func(t *testing.T) {
			back, err := ParseValue(v.String())
			if err != nil {
				t.Fatalf("ParseValue(%q): %v", v.String(), err)
			}
			if !back.Equal(v) || back.Kind() != v.Kind() {
				t.Errorf("round trip: %#v -> %q -> %#v", v, v.String(), back)
			}
		})
	}
}

func TestParseValueErrors(t *testing.T) {
	if _, err := ParseValue(`"unterminated`); err == nil {
		t.Error("ParseValue on malformed quote: want error")
	}
}

func TestParseValueBare(t *testing.T) {
	v, err := ParseValue("034d1")
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := v.Str(); !ok || s != "034d1" {
		t.Errorf("bare token parsed as %#v, want string 034d1", v)
	}
}

// Property: round-tripping any string through String/ParseValue preserves it.
func TestValueStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		v := String(s)
		back, err := ParseValue(v.String())
		if err != nil {
			return false
		}
		got, ok := back.Str()
		return ok && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric on integers.
func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, okx := Int(a).Compare(Int(b))
		y, oky := Int(b).Compare(Int(a))
		return okx && oky && sign(x) == -sign(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
