package logio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"wlq/internal/wlog"
)

// Event-log CSV interop. Process-mining tools conventionally exchange
// "event logs": one row per activity execution with at least a case id and
// an activity name, optionally a timestamp and arbitrary data columns (a
// flat cousin of XES). ImportCSV turns such a file into a workflow log
// satisfying Definition 2 — synthesizing the START (and optionally END)
// records the paper's model requires — so external event logs can be
// queried with incident patterns directly.

// CSVOptions configures ImportCSV.
type CSVOptions struct {
	// CaseColumn names the column holding the case (workflow instance) id.
	// Default "case".
	CaseColumn string
	// ActivityColumn names the column holding the activity name.
	// Default "activity".
	ActivityColumn string
	// TimeColumn, when non-empty, names a column used to order events
	// (lexicographic comparison, so use sortable timestamps like RFC 3339).
	// Rows with equal keys, or all rows when TimeColumn is empty, keep file
	// order. The time value is stored as attribute "time" in αout.
	TimeColumn string
	// CompleteCases appends an END record to every case.
	CompleteCases bool
}

func (o *CSVOptions) normalize() {
	if o.CaseColumn == "" {
		o.CaseColumn = "case"
	}
	if o.ActivityColumn == "" {
		o.ActivityColumn = "activity"
	}
}

// CSV import errors.
var (
	// ErrCSVHeader is returned when a required column is missing.
	ErrCSVHeader = errors.New("logio: missing CSV column")
	// ErrCSVEmpty is returned for a CSV with no event rows.
	ErrCSVEmpty = errors.New("logio: CSV contains no events")
)

// csvEvent is one parsed row.
type csvEvent struct {
	caseID   string
	activity string
	timeKey  string
	attrs    wlog.AttrMap
	fileOrd  int
}

// ImportCSV reads a headered CSV event log and assembles a valid workflow
// log: events are ordered (by TimeColumn, then file order), grouped into
// cases in first-appearance order, and prefixed with synthesized START
// records. Data columns other than case/activity/time become αout
// attributes (values parsed with wlog.ParseValue semantics).
func ImportCSV(r io.Reader, opts CSVOptions) (*wlog.Log, error) {
	opts.normalize()
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated against the header below

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("logio: reading CSV header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[strings.TrimSpace(name)] = i
	}
	caseIdx, ok := col[opts.CaseColumn]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrCSVHeader, opts.CaseColumn)
	}
	actIdx, ok := col[opts.ActivityColumn]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrCSVHeader, opts.ActivityColumn)
	}
	timeIdx := -1
	if opts.TimeColumn != "" {
		timeIdx, ok = col[opts.TimeColumn]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrCSVHeader, opts.TimeColumn)
		}
	}

	var events []csvEvent
	for line := 2; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("logio: CSV line %d: %w", line, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("logio: CSV line %d: %d fields, header has %d",
				line, len(row), len(header))
		}
		ev := csvEvent{
			caseID:   strings.TrimSpace(row[caseIdx]),
			activity: strings.TrimSpace(row[actIdx]),
			fileOrd:  line,
		}
		if ev.caseID == "" || ev.activity == "" {
			return nil, fmt.Errorf("logio: CSV line %d: empty case id or activity", line)
		}
		if ev.activity == wlog.ActivityStart || ev.activity == wlog.ActivityEnd {
			return nil, fmt.Errorf("logio: CSV line %d: reserved activity %q", line, ev.activity)
		}
		attrs := wlog.AttrMap{}
		for i, cell := range row {
			if i == caseIdx || i == actIdx {
				continue
			}
			name := strings.TrimSpace(header[i])
			if i == timeIdx {
				ev.timeKey = strings.TrimSpace(cell)
				name = "time"
			}
			if strings.TrimSpace(cell) == "" {
				continue
			}
			v, err := wlog.ParseValue(strings.TrimSpace(cell))
			if err != nil {
				return nil, fmt.Errorf("logio: CSV line %d column %q: %w", line, name, err)
			}
			attrs[name] = v
		}
		if len(attrs) > 0 {
			ev.attrs = attrs
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		return nil, ErrCSVEmpty
	}

	if timeIdx >= 0 {
		sort.SliceStable(events, func(i, j int) bool {
			if events[i].timeKey != events[j].timeKey {
				return events[i].timeKey < events[j].timeKey
			}
			return events[i].fileOrd < events[j].fileOrd
		})
	}

	var b wlog.Builder
	wids := make(map[string]uint64)
	for _, ev := range events {
		wid, ok := wids[ev.caseID]
		if !ok {
			wid = b.Start()
			wids[ev.caseID] = wid
		}
		if err := b.Emit(wid, ev.activity, nil, ev.attrs); err != nil {
			return nil, fmt.Errorf("logio: CSV line %d: case %q: %w", ev.fileOrd, ev.caseID, err)
		}
	}
	if opts.CompleteCases {
		// End in wid order for deterministic output.
		ids := make([]uint64, 0, len(wids))
		cases := make(map[uint64]string, len(wids))
		for caseID, wid := range wids {
			ids = append(ids, wid)
			cases[wid] = caseID
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, wid := range ids {
			if err := b.End(wid); err != nil {
				return nil, fmt.Errorf("logio: completing case %q: %w", cases[wid], err)
			}
		}
	}
	return b.Build()
}

// ExportCSV writes the log as a headered CSV event log with columns
// case, activity, and one column per attribute name appearing in any αout
// map (sorted). START/END records are skipped (they are workflow-log
// bookkeeping, not events). αin maps are not exported: an event-log row
// conventionally records what the event produced.
func ExportCSV(w io.Writer, l *wlog.Log) error {
	attrSet := make(map[string]struct{})
	for _, r := range l.Records() {
		for name := range r.Out {
			attrSet[name] = struct{}{}
		}
	}
	attrs := make([]string, 0, len(attrSet))
	for name := range attrSet {
		attrs = append(attrs, name)
	}
	sort.Strings(attrs)

	cw := csv.NewWriter(w)
	header := append([]string{"case", "activity"}, attrs...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range l.Records() {
		if r.IsStart() || r.IsEnd() {
			continue
		}
		row := make([]string, 0, len(header))
		row = append(row, fmt.Sprint(r.WID), r.Activity)
		for _, name := range attrs {
			if r.Out.Has(name) {
				row = append(row, r.Out.Get(name).String())
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
