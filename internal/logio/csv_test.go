package logio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"wlq/internal/wlog"
)

const sampleCSV = `case,activity,when,amount
o-1,Pay,2017-01-02T10:00:00Z,120
o-2,Pack,2017-01-02T09:00:00Z,
o-1,Ship,2017-01-03T08:00:00Z,
o-2,Ship,2017-01-02T11:00:00Z,
o-2,Pay,2017-01-04T12:00:00Z,80
`

func TestImportCSVBasics(t *testing.T) {
	l, err := ImportCSV(strings.NewReader(sampleCSV), CSVOptions{TimeColumn: "when"})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("imported log invalid: %v", err)
	}
	if got := len(l.WIDs()); got != 2 {
		t.Fatalf("cases = %d, want 2", got)
	}

	// Time ordering: o-2's Pack (09:00) precedes o-1's Pay (10:00), so case
	// o-2 appears first and receives wid 1.
	inst1 := l.Instance(1)
	if inst1[1].Activity != "Pack" {
		t.Errorf("wid 1 first event = %q, want Pack", inst1[1].Activity)
	}
	inst2 := l.Instance(2)
	if inst2[1].Activity != "Pay" {
		t.Errorf("wid 2 first event = %q, want Pay", inst2[1].Activity)
	}

	// o-2's Ship (11:00) must precede o-2's Pay (12:00) despite file order.
	acts := []string{}
	for _, r := range inst1[1:] {
		acts = append(acts, r.Activity)
	}
	if strings.Join(acts, ",") != "Pack,Ship,Pay" {
		t.Errorf("wid 1 trace = %v", acts)
	}

	// Attribute columns land in αout; the time column is stored as "time".
	if got := inst2[1].Out.Get("amount"); !got.Equal(wlog.Int(120)) {
		t.Errorf("amount = %v", got)
	}
	if got := inst2[1].Out.Get("time"); got.IsUndefined() {
		t.Error("time attribute missing")
	}
	// No END records without CompleteCases.
	for _, wid := range l.WIDs() {
		if l.InstanceComplete(wid) {
			t.Errorf("wid %d unexpectedly complete", wid)
		}
	}
}

func TestImportCSVCompleteCases(t *testing.T) {
	l, err := ImportCSV(strings.NewReader(sampleCSV), CSVOptions{
		TimeColumn: "when", CompleteCases: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, wid := range l.WIDs() {
		if !l.InstanceComplete(wid) {
			t.Errorf("wid %d incomplete despite CompleteCases", wid)
		}
	}
}

func TestImportCSVFileOrderWithoutTime(t *testing.T) {
	l, err := ImportCSV(strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Without a time column, file order rules: o-1 appears first.
	inst1 := l.Instance(1)
	if inst1[1].Activity != "Pay" {
		t.Errorf("wid 1 first event = %q, want Pay (file order)", inst1[1].Activity)
	}
}

func TestImportCSVCustomColumns(t *testing.T) {
	csv := "id,task\n7,Hello\n7,Bye\n"
	l, err := ImportCSV(strings.NewReader(csv), CSVOptions{
		CaseColumn: "id", ActivityColumn: "task",
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := l.Instance(1)
	if len(inst) != 3 || inst[1].Activity != "Hello" || inst[2].Activity != "Bye" {
		t.Errorf("instance = %v", inst)
	}
}

func TestImportCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		csv  string
		opts CSVOptions
		want error
	}{
		{"missing case column", "activity\nA\n", CSVOptions{}, ErrCSVHeader},
		{"missing activity column", "case\n1\n", CSVOptions{}, ErrCSVHeader},
		{"missing time column", "case,activity\n1,A\n", CSVOptions{TimeColumn: "t"}, ErrCSVHeader},
		{"no events", "case,activity\n", CSVOptions{}, ErrCSVEmpty},
		{"empty case id", "case,activity\n,A\n", CSVOptions{}, nil},
		{"empty activity", "case,activity\n1,\n", CSVOptions{}, nil},
		{"reserved activity", "case,activity\n1,START\n", CSVOptions{}, nil},
		{"ragged row", "case,activity\n1,A,extra\n", CSVOptions{}, nil},
		{"empty input", "", CSVOptions{}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ImportCSV(strings.NewReader(tt.csv), tt.opts)
			if err == nil {
				t.Fatal("want error")
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	// Build a log, export to CSV, re-import, and check the activity
	// sequences per instance survive (attributes in αout too).
	var b wlog.Builder
	w1 := b.Start()
	w2 := b.Start()
	steps := []struct {
		wid uint64
		act string
		out wlog.AttrMap
	}{
		{w1, "Pay", wlog.Attrs("amount", 120)},
		{w2, "Pack", nil},
		{w1, "Ship", wlog.Attrs("carrier", "ACME Lines")},
		{w2, "Ship", nil},
	}
	for _, s := range steps {
		if err := b.Emit(s.wid, s.act, nil, s.out); err != nil {
			t.Fatal(err)
		}
	}
	orig := b.MustBuild()

	var buf bytes.Buffer
	if err := ExportCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ImportCSV(&buf, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, wid := range orig.WIDs() {
		var want, got []string
		for _, r := range orig.Instance(wid) {
			if !r.IsStart() && !r.IsEnd() {
				want = append(want, r.Activity)
			}
		}
		for _, r := range back.Instance(wid) {
			if !r.IsStart() && !r.IsEnd() {
				got = append(got, r.Activity)
			}
		}
		if strings.Join(want, ",") != strings.Join(got, ",") {
			t.Errorf("wid %d: trace %v != %v", wid, got, want)
		}
	}
	// Attribute with a space survives quoting.
	rec := back.Instance(1)[2]
	if got := rec.Out.Get("carrier"); !got.Equal(wlog.String("ACME Lines")) {
		t.Errorf("carrier = %v", got)
	}
}
