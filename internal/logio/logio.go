// Package logio serializes workflow logs. Two formats are provided:
//
//   - FormatJSONL: one JSON object per record, self-describing and easy to
//     consume from other tooling.
//   - FormatText: a compact tab-separated form close to the paper's Figure 3
//     presentation, convenient for eyeballing and diffing.
//
// Both formats round-trip exactly: Decode(Encode(L)) equals L, including
// attribute value kinds. Readers and writers are streaming, so logs larger
// than memory can be processed record by record.
package logio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"wlq/internal/wlog"
)

// Format selects a serialization format.
type Format int

// Supported formats.
const (
	FormatJSONL Format = iota + 1
	FormatText
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatJSONL:
		return "jsonl"
	case FormatText:
		return "text"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ErrUnknownFormat is returned for file extensions FormatForPath cannot map.
var ErrUnknownFormat = errors.New("logio: unknown log format")

// FormatForPath infers the format from a file extension: .jsonl/.json map to
// FormatJSONL; .log/.txt/.tsv map to FormatText.
func FormatForPath(path string) (Format, error) {
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".jsonl", ".json":
		return FormatJSONL, nil
	case ".log", ".txt", ".tsv":
		return FormatText, nil
	default:
		return 0, fmt.Errorf("%w: extension %q", ErrUnknownFormat, filepath.Ext(path))
	}
}

// jsonRecord is the wire form of a record in FormatJSONL. Attribute values
// are carried in the textual syntax of wlog.Value, which is kind-preserving.
type jsonRecord struct {
	LSN uint64            `json:"lsn"`
	WID uint64            `json:"wid"`
	Seq uint64            `json:"seq"`
	Act string            `json:"act"`
	In  map[string]string `json:"in,omitempty"`
	Out map[string]string `json:"out,omitempty"`
}

func attrsToWire(m wlog.AttrMap) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v.String()
	}
	return out
}

func attrsFromWire(m map[string]string) (wlog.AttrMap, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(wlog.AttrMap, len(m))
	for k, s := range m {
		v, err := wlog.ParseValue(s)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}

// EncodeRecord renders one record as a single FormatJSONL line without the
// trailing newline — the wire form of the live-append API and the payload of
// a WAL frame. It is the single-record counterpart of Writer.Write.
func EncodeRecord(r wlog.Record) ([]byte, error) {
	line, err := json.Marshal(jsonRecord{
		LSN: r.LSN, WID: r.WID, Seq: r.Seq, Act: r.Activity,
		In: attrsToWire(r.In), Out: attrsToWire(r.Out),
	})
	if err != nil {
		return nil, fmt.Errorf("logio: marshal lsn=%d: %w", r.LSN, err)
	}
	return line, nil
}

// DecodeRecord inverts EncodeRecord: one FormatJSONL line (surrounding
// whitespace tolerated) back to a record.
func DecodeRecord(line []byte) (wlog.Record, error) {
	var jr jsonRecord
	if err := json.Unmarshal(line, &jr); err != nil {
		return wlog.Record{}, fmt.Errorf("logio: %w", err)
	}
	in, err := attrsFromWire(jr.In)
	if err != nil {
		return wlog.Record{}, fmt.Errorf("logio: %w", err)
	}
	out, err := attrsFromWire(jr.Out)
	if err != nil {
		return wlog.Record{}, fmt.Errorf("logio: %w", err)
	}
	return wlog.Record{
		LSN: jr.LSN, WID: jr.WID, Seq: jr.Seq, Activity: jr.Act,
		In: in, Out: out,
	}, nil
}

// Writer streams records to an underlying io.Writer in a fixed format.
// Writers buffer internally; call Flush (or Close) when done.
type Writer struct {
	w      *bufio.Writer
	format Format
}

// NewWriter creates a streaming log writer.
func NewWriter(w io.Writer, format Format) *Writer {
	return &Writer{w: bufio.NewWriter(w), format: format}
}

// Write emits one record.
func (w *Writer) Write(r wlog.Record) error {
	switch w.format {
	case FormatJSONL:
		line, err := json.Marshal(jsonRecord{
			LSN: r.LSN, WID: r.WID, Seq: r.Seq, Act: r.Activity,
			In: attrsToWire(r.In), Out: attrsToWire(r.Out),
		})
		if err != nil {
			return fmt.Errorf("logio: marshal lsn=%d: %w", r.LSN, err)
		}
		if _, err := w.w.Write(line); err != nil {
			return err
		}
		return w.w.WriteByte('\n')
	case FormatText:
		_, err := fmt.Fprintf(w.w, "%d\t%d\t%d\t%s\t%s\t%s\n",
			r.LSN, r.WID, r.Seq, encodeTextActivity(r.Activity),
			encodeTextAttrs(r.In), encodeTextAttrs(r.Out))
		return err
	default:
		return fmt.Errorf("%w: %v", ErrUnknownFormat, w.format)
	}
}

// WriteLog emits every record of a log.
func (w *Writer) WriteLog(l *wlog.Log) error {
	for i := 0; i < l.Len(); i++ {
		if err := w.Write(l.Record(i)); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// encodeTextActivity renders an activity name, quoting it when it contains
// characters that would break the tab-separated layout (or a leading quote
// or '#', which the reader would misinterpret).
func encodeTextActivity(name string) string {
	if name == "" || strings.ContainsAny(name, "\t\n\r") ||
		strings.HasPrefix(name, `"`) || strings.HasPrefix(name, "#") {
		return strconv.Quote(name)
	}
	return name
}

// decodeTextActivity inverts encodeTextActivity.
func decodeTextActivity(field string) (string, error) {
	if strings.HasPrefix(field, `"`) {
		name, err := strconv.Unquote(field)
		if err != nil {
			return "", fmt.Errorf("logio: malformed quoted activity %s", field)
		}
		return name, nil
	}
	return field, nil
}

// encodeTextAttrs renders an attribute map as "k=v;k=v" ("-" when empty).
// Value.String quotes any payload containing '=', ';' or whitespace, and
// attribute names containing structural characters are quoted the same way,
// so the encoding is unambiguous.
func encodeTextAttrs(m wlog.AttrMap) string {
	if len(m) == 0 {
		return "-"
	}
	var sb strings.Builder
	for i, name := range m.Names() {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(encodeAttrName(name))
		sb.WriteByte('=')
		sb.WriteString(m[name].String())
	}
	return sb.String()
}

// encodeAttrName quotes an attribute name when printing it bare would break
// the k=v;k=v layout (or be mistaken for a quoted name on read).
func encodeAttrName(name string) string {
	if name == "" || strings.ContainsAny(name, "=;\t\n\r ") || strings.HasPrefix(name, `"`) {
		return strconv.Quote(name)
	}
	return name
}

// decodeAttrName inverts encodeAttrName.
func decodeAttrName(field string) (string, error) {
	if strings.HasPrefix(field, `"`) {
		name, err := strconv.Unquote(field)
		if err != nil {
			return "", fmt.Errorf("logio: malformed quoted attribute name %s", field)
		}
		return name, nil
	}
	return field, nil
}

func decodeTextAttrs(s string) (wlog.AttrMap, error) {
	if s == "-" || s == "" {
		return nil, nil
	}
	m := make(wlog.AttrMap)
	for _, pair := range splitOutsideQuotes(s, ';') {
		rawName, raw, ok := cutOutsideQuotes(pair, '=')
		if !ok {
			return nil, fmt.Errorf("logio: malformed attribute pair %q", pair)
		}
		name, err := decodeAttrName(rawName)
		if err != nil {
			return nil, err
		}
		v, err := wlog.ParseValue(raw)
		if err != nil {
			return nil, fmt.Errorf("logio: attribute %q: %w", name, err)
		}
		m[name] = v
	}
	return m, nil
}

// splitOutsideQuotes splits s on sep, ignoring separators inside double
// quotes (honoring backslash escapes, as produced by strconv.Quote).
func splitOutsideQuotes(s string, sep byte) []string {
	var parts []string
	start := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\' && inQuote:
			i++ // skip escaped character
		case c == '"':
			inQuote = !inQuote
		case c == sep && !inQuote:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// cutOutsideQuotes is strings.Cut for the first sep outside quotes.
func cutOutsideQuotes(s string, sep byte) (before, after string, found bool) {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\' && inQuote:
			i++
		case c == '"':
			inQuote = !inQuote
		case c == sep && !inQuote:
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// Reader streams records from an underlying io.Reader.
type Reader struct {
	sc     *bufio.Scanner
	format Format
	line   int
}

// NewReader creates a streaming log reader.
func NewReader(r io.Reader, format Format) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc, format: format}
}

// Read returns the next record, or io.EOF after the last one. Blank lines
// and (in text format) lines starting with '#' are skipped.
func (r *Reader) Read() (wlog.Record, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimRight(r.sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if r.format == FormatText && strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := r.decodeLine(line)
		if err != nil {
			// A read error mid-line hands the scanner a torn final token;
			// its parse failure is a symptom, the I/O error the cause.
			if rerr := r.sc.Err(); rerr != nil {
				return wlog.Record{}, fmt.Errorf("logio: line %d: read interrupted: %w", r.line, rerr)
			}
			return wlog.Record{}, fmt.Errorf("logio: line %d: %w", r.line, err)
		}
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return wlog.Record{}, fmt.Errorf("logio: line %d: %w", r.line+1, err)
	}
	return wlog.Record{}, io.EOF
}

func (r *Reader) decodeLine(line string) (wlog.Record, error) {
	switch r.format {
	case FormatJSONL:
		var jr jsonRecord
		if err := json.Unmarshal([]byte(line), &jr); err != nil {
			return wlog.Record{}, err
		}
		in, err := attrsFromWire(jr.In)
		if err != nil {
			return wlog.Record{}, err
		}
		out, err := attrsFromWire(jr.Out)
		if err != nil {
			return wlog.Record{}, err
		}
		return wlog.Record{
			LSN: jr.LSN, WID: jr.WID, Seq: jr.Seq, Activity: jr.Act,
			In: in, Out: out,
		}, nil
	case FormatText:
		fields := strings.Split(line, "\t")
		if len(fields) != 6 {
			return wlog.Record{}, fmt.Errorf("want 6 tab-separated fields, got %d", len(fields))
		}
		lsn, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return wlog.Record{}, fmt.Errorf("lsn: %w", err)
		}
		wid, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return wlog.Record{}, fmt.Errorf("wid: %w", err)
		}
		seq, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return wlog.Record{}, fmt.Errorf("is-lsn: %w", err)
		}
		in, err := decodeTextAttrs(fields[4])
		if err != nil {
			return wlog.Record{}, err
		}
		out, err := decodeTextAttrs(fields[5])
		if err != nil {
			return wlog.Record{}, err
		}
		activity, err := decodeTextActivity(fields[3])
		if err != nil {
			return wlog.Record{}, err
		}
		return wlog.Record{
			LSN: lsn, WID: wid, Seq: seq, Activity: activity,
			In: in, Out: out,
		}, nil
	default:
		return wlog.Record{}, fmt.Errorf("%w: %v", ErrUnknownFormat, r.format)
	}
}

// ReadAll consumes the remaining records and assembles a validated Log.
func (r *Reader) ReadAll() (*wlog.Log, error) {
	var records []wlog.Record
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	return wlog.New(records)
}

// Encode writes an entire log to w in the given format.
func Encode(w io.Writer, l *wlog.Log, format Format) error {
	lw := NewWriter(w, format)
	if err := lw.WriteLog(l); err != nil {
		return err
	}
	return lw.Flush()
}

// Decode reads an entire validated log from r in the given format.
func Decode(r io.Reader, format Format) (*wlog.Log, error) {
	return NewReader(r, format).ReadAll()
}

// WriteFile writes a log to path, inferring the format from the extension.
func WriteFile(path string, l *wlog.Log) (err error) {
	format, err := FormatForPath(path)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return Encode(f, l, format)
}

// ReadFileAny reads a validated log from path like ReadFile, but also
// accepts the import formats: .csv (headered event log) and .xes
// (IEEE 1849), both with default import options. It is the one-stop loader
// the CLI and the query service use for file arguments.
func ReadFileAny(path string) (*wlog.Log, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ImportCSV(f, CSVOptions{})
	case ".xes":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ImportXES(f, XESOptions{})
	default:
		return ReadFile(path)
	}
}

// ReadFile reads a validated log from path, inferring the format from the
// extension.
func ReadFile(path string) (*wlog.Log, error) {
	format, err := FormatForPath(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f, format)
}
