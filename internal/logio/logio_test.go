package logio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"wlq/internal/wlog"
)

// gnarlyLog builds a log exercising every value kind and every character
// that could confuse the codecs (tabs, semicolons, equals signs, quotes).
func gnarlyLog(t *testing.T) *wlog.Log {
	t.Helper()
	var b wlog.Builder
	w1 := b.Start()
	w2 := b.Start()
	steps := []struct {
		wid uint64
		act string
		in  wlog.AttrMap
		out wlog.AttrMap
	}{
		{w1, "GetRefer", nil, wlog.Attrs(
			"hospital", "Public Hospital",
			"referId", "034d1",
			"balance", 1000,
		)},
		{w2, "Weird", wlog.Attrs(
			"tabs", "a\tb",
			"semi", "a;b",
			"eq", "a=b",
			"quote", `say "hi"`,
			"undef", wlog.Undefined(),
		), wlog.Attrs(
			"f", 2.75,
			"neg", -17,
			"flag", true,
			"numlike", "007",
		)},
		{w1, "CheckIn", wlog.Attrs("balance", 1000), wlog.Attrs("referState", "active")},
	}
	for _, s := range steps {
		if err := b.Emit(s.wid, s.act, s.in, s.out); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.End(w1); err != nil {
		t.Fatal(err)
	}
	return b.MustBuild()
}

func TestRoundTripBothFormats(t *testing.T) {
	l := gnarlyLog(t)
	for _, format := range []Format{FormatJSONL, FormatText} {
		t.Run(format.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := Encode(&buf, l, format); err != nil {
				t.Fatalf("Encode: %v", err)
			}
			back, err := Decode(&buf, format)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !l.Equal(back) {
				t.Errorf("round trip mismatch:\nwant:\n%s\ngot:\n%s", l, back)
			}
		})
	}
}

func TestRoundTripPreservesValueKinds(t *testing.T) {
	l := gnarlyLog(t)
	for _, format := range []Format{FormatJSONL, FormatText} {
		var buf bytes.Buffer
		if err := Encode(&buf, l, format); err != nil {
			t.Fatal(err)
		}
		back, err := Decode(&buf, format)
		if err != nil {
			t.Fatal(err)
		}
		rec := back.Record(3) // the "Weird" record
		if rec.Activity != "Weird" {
			t.Fatalf("unexpected record order: %v", rec)
		}
		if got := rec.Out.Get("numlike"); got.Kind() != wlog.KindString {
			t.Errorf("%v: numeric-looking string decoded as %v", format, got.Kind())
		}
		if got := rec.In.Get("undef"); !got.IsUndefined() {
			t.Errorf("%v: undefined decoded as %v", format, got)
		}
		if got := rec.Out.Get("f"); got.Kind() != wlog.KindFloat {
			t.Errorf("%v: float decoded as %v", format, got.Kind())
		}
	}
}

func TestStreamingReader(t *testing.T) {
	l := gnarlyLog(t)
	var buf bytes.Buffer
	if err := Encode(&buf, l, FormatText); err != nil {
		t.Fatal(err)
	}
	// Inject noise the text reader must skip.
	noisy := "# header comment\n\n" + buf.String() + "\n# trailing\n"
	r := NewReader(strings.NewReader(noisy), FormatText)
	var n int
	for {
		_, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		n++
	}
	if n != l.Len() {
		t.Errorf("streamed %d records, want %d", n, l.Len())
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name   string
		format Format
		input  string
	}{
		{"bad json", FormatJSONL, "{not json\n"},
		{"wrong field count", FormatText, "1\t2\t3\n"},
		{"bad lsn", FormatText, "x\t1\t1\tSTART\t-\t-\n"},
		{"bad wid", FormatText, "1\tx\t1\tSTART\t-\t-\n"},
		{"bad seq", FormatText, "1\t1\tx\tSTART\t-\t-\n"},
		{"bad attr pair", FormatText, "1\t1\t1\tSTART\tnopair\t-\n"},
		{"bad attr value", FormatText, "1\t1\t1\tSTART\ta=\"oops\t-\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tt.input), tt.format)
			if err == nil {
				t.Error("Decode: want error")
			}
		})
	}
}

func TestDecodeValidatesLog(t *testing.T) {
	// Syntactically fine but semantically invalid (no START record).
	input := "1\t1\t1\tNotStart\t-\t-\n"
	_, err := Decode(strings.NewReader(input), FormatText)
	if !errors.Is(err, wlog.ErrInvalidLog) {
		t.Errorf("Decode: %v, want ErrInvalidLog", err)
	}
}

func TestFormatForPath(t *testing.T) {
	tests := []struct {
		path    string
		want    Format
		wantErr bool
	}{
		{"a.jsonl", FormatJSONL, false},
		{"a.json", FormatJSONL, false},
		{"a.log", FormatText, false},
		{"a.txt", FormatText, false},
		{"A.TSV", FormatText, false},
		{"a.bin", 0, true},
		{"a", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.path, func(t *testing.T) {
			got, err := FormatForPath(tt.path)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("FormatForPath = %v, want %v", got, tt.want)
			}
			if err != nil && !errors.Is(err, ErrUnknownFormat) {
				t.Errorf("error %v does not wrap ErrUnknownFormat", err)
			}
		})
	}
}

func TestFileRoundTrip(t *testing.T) {
	l := gnarlyLog(t)
	dir := t.TempDir()
	for _, name := range []string{"log.jsonl", "log.txt"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, l); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
		back, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		if !l.Equal(back) {
			t.Errorf("%s: file round trip mismatch", name)
		}
	}
	if err := WriteFile(filepath.Join(dir, "log.bin"), l); err == nil {
		t.Error("WriteFile with unknown extension: want error")
	}
	if _, err := ReadFile(filepath.Join(dir, "absent.jsonl")); err == nil {
		t.Error("ReadFile on missing file: want error")
	}
}

// TestRoundTripRandomized round-trips many randomized logs through both
// codecs. Attribute names and values are drawn from a pool that includes
// hostile characters.
func TestRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	valuePool := []wlog.Value{
		wlog.String("plain"), wlog.String("two words"), wlog.String("a;b=c"),
		wlog.String(""), wlog.String("\"\""), wlog.Int(0), wlog.Int(-5),
		wlog.Float(3.5), wlog.Bool(false), wlog.Undefined(),
	}
	for trial := 0; trial < 25; trial++ {
		var b wlog.Builder
		wids := make([]uint64, 1+rng.Intn(4))
		for i := range wids {
			wids[i] = b.Start()
		}
		for step := 0; step < 30; step++ {
			wid := wids[rng.Intn(len(wids))]
			if !b.Active(wid) {
				continue
			}
			attrs := wlog.AttrMap{}
			for a := 0; a < rng.Intn(4); a++ {
				attrs["attr"+string(rune('a'+a))] = valuePool[rng.Intn(len(valuePool))]
			}
			if err := b.Emit(wid, "Act"+string(rune('A'+rng.Intn(5))), attrs, nil); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(10) == 0 {
				if err := b.End(wid); err != nil {
					t.Fatal(err)
				}
			}
		}
		l := b.MustBuild()
		for _, format := range []Format{FormatJSONL, FormatText} {
			var buf bytes.Buffer
			if err := Encode(&buf, l, format); err != nil {
				t.Fatalf("trial %d %v Encode: %v", trial, format, err)
			}
			back, err := Decode(&buf, format)
			if err != nil {
				t.Fatalf("trial %d %v Decode: %v", trial, format, err)
			}
			if !l.Equal(back) {
				t.Fatalf("trial %d %v: round trip mismatch", trial, format)
			}
		}
	}
}

func TestSplitOutsideQuotes(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{`a=1;b=2`, 2},
		{`a="x;y";b=2`, 2},
		{`a="x\";y";b=2`, 2},
		{`solo`, 1},
		{``, 1},
	}
	for _, tt := range tests {
		if got := splitOutsideQuotes(tt.in, ';'); len(got) != tt.want {
			t.Errorf("splitOutsideQuotes(%q) = %v, want %d parts", tt.in, got, tt.want)
		}
	}
}

// TestHostileActivityNames: activity names containing the text format's own
// structural characters must round-trip through both codecs.
func TestHostileActivityNames(t *testing.T) {
	names := []string{
		"tab\there", "new\nline", "#leadinghash", `"quoted"`, "trailing ",
		"carriage\rreturn", "plain",
	}
	var b wlog.Builder
	w := b.Start()
	for _, name := range names {
		if err := b.Emit(w, name, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	l := b.MustBuild()
	for _, format := range []Format{FormatJSONL, FormatText} {
		var buf bytes.Buffer
		if err := Encode(&buf, l, format); err != nil {
			t.Fatalf("%v Encode: %v", format, err)
		}
		back, err := Decode(&buf, format)
		if err != nil {
			t.Fatalf("%v Decode: %v", format, err)
		}
		if !l.Equal(back) {
			t.Errorf("%v: hostile activity names did not round-trip", format)
		}
	}
}

// TestHostileAttributeNames: attribute names containing the k=v;k=v
// structural characters must round-trip through both codecs.
func TestHostileAttributeNames(t *testing.T) {
	var b wlog.Builder
	w := b.Start()
	attrs := wlog.AttrMap{
		"with=equals": wlog.Int(1),
		"with;semi":   wlog.Int(2),
		"with space":  wlog.Int(3),
		`"prequoted"`: wlog.Int(4),
		"with\ttab":   wlog.Int(5),
		"":            wlog.Int(6),
		"plain":       wlog.Int(7),
	}
	if err := b.Emit(w, "A", attrs, attrs); err != nil {
		t.Fatal(err)
	}
	l := b.MustBuild()
	for _, format := range []Format{FormatJSONL, FormatText} {
		var buf bytes.Buffer
		if err := Encode(&buf, l, format); err != nil {
			t.Fatalf("%v Encode: %v", format, err)
		}
		back, err := Decode(&buf, format)
		if err != nil {
			t.Fatalf("%v Decode: %v\npayload:\n%s", format, err, buf.String())
		}
		if !l.Equal(back) {
			t.Errorf("%v: hostile attribute names did not round-trip:\n%s\nvs\n%s",
				format, l, back)
		}
	}
}
