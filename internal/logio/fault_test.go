package logio

import (
	"errors"
	"strings"
	"testing"

	"wlq/internal/faultinject"
)

// Fault-injection tests: the deterministic failing readers from
// internal/faultinject exercise the error paths of every importer. The
// properties asserted are the robustness contract: an I/O failure surfaces
// the underlying error (wrapped, so errors.Is still sees it); a torn file
// fails with a position-carrying parse error, never a silently short log;
// and an adversarial Read schedule cannot change what is parsed.

const faultText = "1\t1\t1\tSTART\t-\t-\n2\t1\t2\tA\t-\t-\n3\t1\t3\tB\t-\t-\n"

func TestFaultErrorReaderPropagatesInjectedError(t *testing.T) {
	for _, format := range []Format{FormatText, FormatJSONL} {
		r := faultinject.ErrorReader(strings.NewReader(faultText), 8)
		_, err := Decode(r, format)
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("%v: err = %v, want wrapped ErrInjected", format, err)
		}
	}
}

func TestFaultErrorReaderPropagatesThroughImporters(t *testing.T) {
	csvText := "case,activity\nc1,A\nc1,B\n"
	if _, err := ImportCSV(faultinject.ErrorReader(strings.NewReader(csvText), 18), CSVOptions{}); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("CSV: err = %v, want wrapped ErrInjected", err)
	}
	xesText := `<log><trace><event><string key="concept:name" value="A"/></event></trace></log>`
	if _, err := ImportXES(faultinject.ErrorReader(strings.NewReader(xesText), 20), XESOptions{}); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("XES: err = %v, want wrapped ErrInjected", err)
	}
}

func TestFaultTruncatedCSVFailsWithPosition(t *testing.T) {
	csvText := "case,activity\nc1,A\nc1,B\n"
	// Cut the last record to "c1": a short row, not a short log.
	r := faultinject.TruncateReader(strings.NewReader(csvText), int64(len(csvText)-3))
	_, err := ImportCSV(r, CSVOptions{})
	if err == nil {
		t.Fatal("truncated CSV imported successfully")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("truncation error carries no line position: %v", err)
	}
}

func TestFaultTruncatedTextFailsWithPosition(t *testing.T) {
	// Cut the final record down to four fields.
	r := faultinject.TruncateReader(strings.NewReader(faultText), int64(len(faultText)-6))
	_, err := Decode(r, FormatText)
	if err == nil {
		t.Fatal("truncated text log decoded successfully")
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("truncation error carries no line position: %v", err)
	}
}

func TestFaultSlowReaderParsesIdentically(t *testing.T) {
	want, err := Decode(strings.NewReader(faultText), FormatText)
	if err != nil {
		t.Fatal(err)
	}
	// One byte per Read: every record is split across Read boundaries.
	got, err := Decode(faultinject.SlowReader(strings.NewReader(faultText), 1), FormatText)
	if err != nil {
		t.Fatalf("slow-read decode failed: %v", err)
	}
	if !want.Equal(got) {
		t.Fatal("read schedule changed the decoded log")
	}
}
