package logio

import (
	"strings"
	"testing"

	"wlq/internal/wlog"
)

// FuzzDecodeText checks the text-format reader never panics on arbitrary
// bytes and that any log it accepts satisfies Definition 2 and re-encodes
// to an equal log.
func FuzzDecodeText(f *testing.F) {
	seeds := []string{
		"1\t1\t1\tSTART\t-\t-\n",
		"1\t1\t1\tSTART\t-\t-\n2\t1\t2\tA\tx=1\ty=\"a;b\"\n",
		"# comment\n\n1\t1\t1\tSTART\t-\t-\n",
		"1\t1\t1\tSTART\t-\n",                       // missing field
		"x\t1\t1\tSTART\t-\t-\n",                    // bad lsn
		"1\t1\t1\tSTART\ta=\"\t-\n",                 // broken quote
		"1\t1\t1\tA\t-\t-\n",                        // invalid log (no START)
		"1\t1\t1\tSTART\t-\t-\r\n",                  // CRLF
		strings.Repeat("1\t1\t1\tSTART\t-\t-\n", 3), // duplicate lsn
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		l, err := Decode(strings.NewReader(input), FormatText)
		if err != nil {
			return
		}
		if verr := l.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid log: %v", verr)
		}
		var sb strings.Builder
		if err := Encode(&sb, l, FormatText); err != nil {
			t.Fatalf("re-Encode failed: %v", err)
		}
		back, err := Decode(strings.NewReader(sb.String()), FormatText)
		if err != nil {
			t.Fatalf("re-Decode failed: %v", err)
		}
		if !l.Equal(back) {
			t.Fatal("text round trip changed the log")
		}
	})
}

// FuzzDecodeJSONL is the same property for the JSONL codec.
func FuzzDecodeJSONL(f *testing.F) {
	seeds := []string{
		`{"lsn":1,"wid":1,"seq":1,"act":"START"}` + "\n",
		`{"lsn":1,"wid":1,"seq":1,"act":"START"}` + "\n" +
			`{"lsn":2,"wid":1,"seq":2,"act":"A","out":{"x":"1"}}` + "\n",
		`{not json}`,
		`{"lsn":0}`,
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		l, err := Decode(strings.NewReader(input), FormatJSONL)
		if err != nil {
			return
		}
		if verr := l.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid log: %v", verr)
		}
		var sb strings.Builder
		if err := Encode(&sb, l, FormatJSONL); err != nil {
			t.Fatalf("re-Encode failed: %v", err)
		}
		back, err := Decode(strings.NewReader(sb.String()), FormatJSONL)
		if err != nil {
			t.Fatalf("re-Decode failed: %v", err)
		}
		if !l.Equal(back) {
			t.Fatal("jsonl round trip changed the log")
		}
	})
}

// FuzzImportCSV checks the CSV event-log importer never panics on arbitrary
// bytes and that any log it accepts satisfies Definition 2. The seeds
// include the torn-file shapes the fault-injection harness produces
// (truncated mid-record, bare header, reserved activities).
func FuzzImportCSV(f *testing.F) {
	seeds := []string{
		"case,activity\nc1,A\nc1,B\n",
		"case,activity,time\nc1,A,2026-01-01\nc2,B,2026-01-02\n",
		"case,activity\nc1,START\n", // reserved activity
		"case,activity\nc1,A\nc1",   // truncated mid-record
		"case,activity\n",           // header only
		"activity\nA\n",             // missing case column
		"case,activity\n\"c1,A\n",   // broken quote
		"case,activity,x\nc1,A,1;2\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		l, err := ImportCSV(strings.NewReader(input), CSVOptions{CompleteCases: true})
		if err != nil {
			return
		}
		if verr := l.Validate(); verr != nil {
			t.Fatalf("ImportCSV accepted an invalid log: %v", verr)
		}
	})
}

// FuzzImportXES is the same property for the XES importer.
func FuzzImportXES(f *testing.F) {
	seeds := []string{
		`<log><trace><event><string key="concept:name" value="A"/></event></trace></log>`,
		`<log><trace><event><string key="concept:name" value="A"/><int key="n" value="3"/></event></trace></log>`,
		`<log><trace><event><string key="k" value="v"/></event></trace></log>`, // no concept:name
		`<log><trace><event><string key="concept:name" value="START"/></event></trace></log>`,
		`<log><trace><event>`, // truncated mid-element
		`<log></log>`,
		`not xml at all`,
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		l, err := ImportXES(strings.NewReader(input), XESOptions{CompleteCases: true})
		if err != nil {
			return
		}
		if verr := l.Validate(); verr != nil {
			t.Fatalf("ImportXES accepted an invalid log: %v", verr)
		}
	})
}

// FuzzParseValue checks value parsing never panics and that parsing is
// total for the printed form of what it accepts.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"_|_", "123", "-4.5", "true", `"quoted"`, "bare", `"\x"`, `"`} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		v, err := wlog.ParseValue(input)
		if err != nil {
			return
		}
		back, err := wlog.ParseValue(v.String())
		if err != nil {
			t.Fatalf("printed form %q of %q does not re-parse: %v", v.String(), input, err)
		}
		if !back.Equal(v) {
			t.Fatalf("value round trip changed: %q -> %v -> %v", input, v, back)
		}
	})
}
