package logio

import (
	"errors"
	"strings"
	"testing"

	"wlq/internal/wlog"
)

const sampleXES = `<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0">
  <string key="concept:name" value="orders"/>
  <trace>
    <string key="concept:name" value="o-1"/>
    <event>
      <string key="concept:name" value="Pay"/>
      <int key="amount" value="120"/>
      <date key="time:timestamp" value="2017-01-02T10:00:00Z"/>
    </event>
    <event>
      <string key="concept:name" value="Ship"/>
      <boolean key="express" value="true"/>
    </event>
  </trace>
  <trace>
    <string key="concept:name" value="o-2"/>
    <event>
      <string key="concept:name" value="Ship"/>
    </event>
    <event>
      <string key="concept:name" value="Pay"/>
      <float key="amount" value="79.5"/>
    </event>
  </trace>
</log>`

func TestImportXESBasics(t *testing.T) {
	l, err := ImportXES(strings.NewReader(sampleXES), XESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("imported log invalid: %v", err)
	}
	if got := len(l.WIDs()); got != 2 {
		t.Fatalf("instances = %d, want 2", got)
	}

	inst1 := l.Instance(1)
	if len(inst1) != 3 || inst1[1].Activity != "Pay" || inst1[2].Activity != "Ship" {
		t.Errorf("trace 1 = %v", inst1)
	}
	// Typed attributes preserved.
	if got := inst1[1].Out.Get("amount"); !got.Equal(wlog.Int(120)) {
		t.Errorf("amount = %v", got)
	}
	if got, ok := inst1[1].Out.Get("time:timestamp").Str(); !ok || !strings.HasPrefix(got, "2017") {
		t.Errorf("timestamp = %v", inst1[1].Out.Get("time:timestamp"))
	}
	if got := inst1[2].Out.Get("express"); !got.Equal(wlog.Bool(true)) {
		t.Errorf("express = %v", got)
	}
	inst2 := l.Instance(2)
	if got := inst2[2].Out.Get("amount"); !got.Equal(wlog.Float(79.5)) {
		t.Errorf("float amount = %v", got)
	}
	// Default mode interleaves round-robin: records of wid 1 and 2 alternate.
	if l.Record(2).WID == l.Record(3).WID {
		t.Errorf("expected interleaving, got %v then %v", l.Record(2), l.Record(3))
	}
}

func TestImportXESSerialAndComplete(t *testing.T) {
	l, err := ImportXES(strings.NewReader(sampleXES), XESOptions{Serial: true, CompleteCases: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, wid := range l.WIDs() {
		if !l.InstanceComplete(wid) {
			t.Errorf("wid %d incomplete", wid)
		}
	}
	// Serial: wid 1's records all precede wid 2's.
	maxW1, minW2 := uint64(0), uint64(1<<62)
	for _, r := range l.Records() {
		if r.WID == 1 && r.LSN > maxW1 {
			maxW1 = r.LSN
		}
		if r.WID == 2 && r.LSN < minW2 {
			minW2 = r.LSN
		}
	}
	if maxW1 > minW2 {
		t.Error("serial mode interleaved traces")
	}
}

func TestImportXESErrors(t *testing.T) {
	tests := []struct {
		name string
		xes  string
		want error
	}{
		{"not xml", "not xml at all <", nil},
		{"no traces", `<log></log>`, ErrXESNoTraces},
		{"empty traces", `<log><trace></trace></log>`, ErrXESNoTraces},
		{
			"event without name",
			`<log><trace><event><string key="x" value="y"/></event></trace></log>`,
			ErrXESEventName,
		},
		{
			"reserved activity",
			`<log><trace><event><string key="concept:name" value="START"/></event></trace></log>`,
			nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ImportXES(strings.NewReader(tt.xes), XESOptions{})
			if err == nil {
				t.Fatal("want error")
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestImportXESBadTypedValueFallsBack(t *testing.T) {
	xes := `<log><trace><event>
		<string key="concept:name" value="A"/>
		<int key="n" value="not-a-number"/>
	</event></trace></log>`
	l, err := ImportXES(strings.NewReader(xes), XESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := l.Instance(1)[1].Out.Get("n")
	if s, ok := got.Str(); !ok || s != "not-a-number" {
		t.Errorf("bad int fell back to %v", got)
	}
}

func TestImportXESTrimsActivityWhitespace(t *testing.T) {
	const padded = `<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0">
  <trace>
    <string key="concept:name" value="o-1"/>
    <event><string key="concept:name" value="  Pay "/></event>
    <event><string key="concept:name" value="Pay"/></event>
  </trace>
</log>
`
	l, err := ImportXES(strings.NewReader(padded), XESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inst := l.Instance(1)
	for _, r := range inst[1:] {
		if r.Activity != "Pay" {
			t.Errorf("activity = %q, want %q (whitespace trimmed at ingest)", r.Activity, "Pay")
		}
	}
}
