package logio

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"wlq/internal/wlog"
)

// XES import. XES (IEEE 1849) is the standard interchange format for
// process-mining event logs: a <log> of <trace> elements, each holding
// <event> elements, with typed attribute children (<string>, <int>,
// <float>, <boolean>, <date>) keyed by convention — "concept:name" names
// the trace (case id) and the event (activity name).
//
// ImportXES maps each trace to a workflow instance and each event to a log
// record: the event's concept:name becomes the activity, every other event
// attribute lands in αout (dates as strings, which sort correctly for ISO
// timestamps). Events keep document order, the order XES semantics
// prescribe within a trace; traces are interleaved round-robin so the
// resulting log has the concurrent-instances shape of the paper's Figure 3.
// A START record is synthesized per trace, and an END record when the
// CompleteCases option is set.

// XESOptions configures ImportXES.
type XESOptions struct {
	// CompleteCases appends an END record to every trace.
	CompleteCases bool
	// Serial appends each trace's records as one contiguous block instead
	// of interleaving traces round-robin.
	Serial bool
}

// xesAttr is one typed attribute element.
type xesAttr struct {
	XMLName xml.Name
	Key     string `xml:"key,attr"`
	Value   string `xml:"value,attr"`
}

type xesEvent struct {
	Attrs []xesAttr `xml:",any"`
}

type xesTrace struct {
	Attrs  []xesAttr  `xml:"string"`
	Events []xesEvent `xml:"event"`
}

type xesLog struct {
	Traces []xesTrace `xml:"trace"`
}

// XES import errors.
var (
	// ErrXESNoTraces is returned for a log without traces or events.
	ErrXESNoTraces = errors.New("logio: XES log contains no traces with events")
	// ErrXESEventName is returned when an event lacks concept:name.
	ErrXESEventName = errors.New("logio: XES event without concept:name")
)

// conceptName is the XES attribute key naming traces and events.
const conceptName = "concept:name"

// ImportXES reads an XES document and assembles a valid workflow log.
func ImportXES(r io.Reader, opts XESOptions) (*wlog.Log, error) {
	var doc xesLog
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("logio: parsing XES: %w", err)
	}

	type caseTrace struct {
		events []wlog.Record // Activity + Out filled; ids assigned later
	}
	var cases []caseTrace
	for ti, trace := range doc.Traces {
		var ct caseTrace
		for ei, ev := range trace.Events {
			activity := ""
			attrs := wlog.AttrMap{}
			for _, a := range ev.Attrs {
				if a.Key == conceptName {
					// Trim surrounding whitespace so the activity name is
					// identical no matter which importer produced it (CSV
					// already trims) — the row and columnar backends intern
					// by exact string and must never disagree on identity.
					activity = strings.TrimSpace(a.Value)
					continue
				}
				if a.Key == "" {
					continue
				}
				attrs[a.Key] = xesValue(a)
			}
			if activity == "" {
				return nil, fmt.Errorf("%w: trace %d event %d", ErrXESEventName, ti+1, ei+1)
			}
			if activity == wlog.ActivityStart || activity == wlog.ActivityEnd {
				return nil, fmt.Errorf("logio: trace %d event %d: reserved activity %q",
					ti+1, ei+1, activity)
			}
			if len(attrs) == 0 {
				attrs = nil
			}
			ct.events = append(ct.events, wlog.Record{Activity: activity, Out: attrs})
		}
		if len(ct.events) > 0 {
			cases = append(cases, ct)
		}
	}
	if len(cases) == 0 {
		return nil, ErrXESNoTraces
	}

	var b wlog.Builder
	wids := make([]uint64, len(cases))
	emit := func(ci, ei int) error {
		ev := cases[ci].events[ei]
		if err := b.Emit(wids[ci], ev.Activity, nil, ev.Out); err != nil {
			return fmt.Errorf("logio: trace %d event %d: %w", ci+1, ei+1, err)
		}
		return nil
	}
	end := func(ci int) error {
		if err := b.End(wids[ci]); err != nil {
			return fmt.Errorf("logio: completing trace %d: %w", ci+1, err)
		}
		return nil
	}
	if opts.Serial {
		for ci := range cases {
			wids[ci] = b.Start()
			for ei := range cases[ci].events {
				if err := emit(ci, ei); err != nil {
					return nil, err
				}
			}
			if opts.CompleteCases {
				if err := end(ci); err != nil {
					return nil, err
				}
			}
		}
		return b.Build()
	}
	for ci := range cases {
		wids[ci] = b.Start()
	}
	for step := 0; ; step++ {
		emitted := false
		for ci := range cases {
			if step < len(cases[ci].events) {
				if err := emit(ci, step); err != nil {
					return nil, err
				}
				emitted = true
			}
		}
		if !emitted {
			break
		}
	}
	if opts.CompleteCases {
		for ci := range wids {
			if err := end(ci); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// xesValue converts a typed XES attribute to a wlog.Value based on its
// element name; unknown types (including id, list, container) fall back to
// the raw string.
func xesValue(a xesAttr) wlog.Value {
	switch a.XMLName.Local {
	case "int", "float", "boolean":
		if v, err := wlog.ParseValue(a.Value); err == nil {
			return v
		}
		return wlog.String(a.Value)
	default: // string, date, id, ...
		return wlog.String(a.Value)
	}
}
