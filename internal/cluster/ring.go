// Package cluster promotes the internal/shard failure-domain boundary to
// the network: a coordinator places a log's workflow instances on worker
// nodes by consistent hash, fans each query out over HTTP to the workers
// owning wids, and merges the per-worker answers through the same
// answer-preserving normalization the in-process executor uses — so a
// distributed evaluation is digest-identical to a single-node one, and a
// lost worker degrades the answer (a 206 with a Completeness document
// naming the missing wid ranges) instead of failing it.
//
// Definition 4 makes incident semantics strictly per-instance, so the
// distribution is exact: no cross-worker joins exist, and each worker
// evaluates its owned wid set against its local backend (row or columnar)
// independently. What the network tier adds over in-process shards is real
// failure independence — a worker process can die, hang, or partition
// without taking the coordinator's process down — paid for with the full
// set of network-robustness machinery:
//
//   - per-worker attempt timeouts and capped-exponential retry with jitter
//     (reusing shard.Backoff);
//   - per-worker circuit breakers (shard.Breaker on the resilience clock
//     seam) so a dead node is skipped, not re-dialed by every query;
//   - hedged requests: a straggling worker gets a duplicate request after
//     a configurable delay, and the first answer wins;
//   - periodic health probing that feeds the coordinator's /readyz;
//   - per-worker budget slices (resilience.Budget.Slice) so one slow
//     worker cannot spend the whole query's allowance.
//
// Placement is deterministic and process-independent: the ring hashes
// worker names with FNV-1a (not maphash), so the coordinator and every
// worker — today's and a restarted one — agree on who owns which wid
// without any coordination beyond the membership list carried in each
// request.
package cluster

import (
	"sort"
)

// DefaultHashReplicas is the virtual-node count per worker on the ring.
// More replicas smooth the wid distribution across workers at the cost of
// a larger (still tiny) ring; 64 keeps the per-worker load within a few
// percent of even for realistic worker counts.
const DefaultHashReplicas = 64

// fnv1a is FNV-1a over arbitrary bytes. Deliberately not maphash: placement
// must be stable across processes and restarts, so a worker can recompute
// the wid set the coordinator assigned it from the membership list alone.
func fnv1a(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// hashWID hashes a workflow instance id for ring placement (FNV-1a over the
// id's little-endian bytes, matching internal/shard's stable hashing).
func hashWID(wid uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= wid >> (8 * i) & 0xff
		h *= prime64
	}
	return h
}

// ringPoint is one virtual node: a position on the hash circle owned by a
// worker (indexed into the membership slice).
type ringPoint struct {
	hash   uint64
	worker int
}

// Ring is a consistent-hash ring mapping workflow instance ids to workers.
// It is immutable after NewRing and safe for concurrent use. Identical
// inputs build identical rings in any process — that property is the whole
// protocol: the coordinator sends only the membership list and replica
// count, and each worker derives its own wid set.
type Ring struct {
	workers  []string
	replicas int
	points   []ringPoint
}

// NewRing builds a ring over the worker names with the given virtual-node
// count per worker (<= 0 means DefaultHashReplicas). Worker order does not
// affect placement — only the names do.
func NewRing(workers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultHashReplicas
	}
	r := &Ring{
		workers:  append([]string(nil), workers...),
		replicas: replicas,
		points:   make([]ringPoint, 0, len(workers)*replicas),
	}
	buf := make([]byte, 0, 80)
	for wi, name := range r.workers {
		for i := 0; i < replicas; i++ {
			buf = buf[:0]
			buf = append(buf, name...)
			buf = append(buf, '#')
			buf = appendUint(buf, uint64(i))
			r.points = append(r.points, ringPoint{hash: fnv1a(buf), worker: wi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so placement stays
		// order-independent.
		return r.workers[r.points[i].worker] < r.workers[r.points[j].worker]
	})
	return r
}

// appendUint appends the decimal digits of v.
func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// Workers returns the membership list (callers must not modify it).
func (r *Ring) Workers() []string { return r.workers }

// Replicas returns the virtual-node count per worker.
func (r *Ring) Replicas() int { return r.replicas }

// Owner returns the index (into Workers) of the worker owning the wid, or
// -1 for an empty ring: the first virtual node clockwise of the wid's hash.
func (r *Ring) Owner(wid uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hashWID(wid)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].worker
}

// OwnedWIDs filters an ascending wid slice down to the wids the worker at
// index self owns. The result is ascending; the input is not modified.
func (r *Ring) OwnedWIDs(wids []uint64, self int) []uint64 {
	var owned []uint64
	for _, wid := range wids {
		if r.Owner(wid) == self {
			owned = append(owned, wid)
		}
	}
	return owned
}

// Assignments partitions an ascending wid slice by owner: result[i] holds
// the (ascending) wids owned by Workers()[i]. Workers may own zero wids.
func (r *Ring) Assignments(wids []uint64) [][]uint64 {
	out := make([][]uint64, len(r.workers))
	for _, wid := range wids {
		if o := r.Owner(wid); o >= 0 {
			out[o] = append(out[o], wid)
		}
	}
	return out
}

// WorkerIndex resolves a worker name to its index in Workers, or -1.
func (r *Ring) WorkerIndex(name string) int {
	for i, w := range r.workers {
		if w == name {
			return i
		}
	}
	return -1
}
