package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"testing"
)

func testWIDs(n int) []uint64 {
	wids := make([]uint64, n)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}
	return wids
}

func TestClusterRingDeterministicAcrossProcessesAndOrder(t *testing.T) {
	wids := testWIDs(500)
	a := NewRing([]string{"http://w1", "http://w2", "http://w3"}, 64)
	// A second ring built independently (a worker's view) must agree wid for
	// wid — that property IS the wire protocol.
	b := NewRing([]string{"http://w1", "http://w2", "http://w3"}, 64)
	// Membership order must not matter, only the names.
	c := NewRing([]string{"http://w3", "http://w1", "http://w2"}, 64)
	for _, wid := range wids {
		oa, ob, oc := a.Owner(wid), b.Owner(wid), c.Owner(wid)
		if a.Workers()[oa] != b.Workers()[ob] {
			t.Fatalf("wid %d: ring views disagree: %s vs %s", wid, a.Workers()[oa], b.Workers()[ob])
		}
		if a.Workers()[oa] != c.Workers()[oc] {
			t.Fatalf("wid %d: permuted membership moved the wid: %s vs %s",
				wid, a.Workers()[oa], c.Workers()[oc])
		}
	}
}

func TestClusterRingAssignmentsPartition(t *testing.T) {
	wids := testWIDs(300)
	r := NewRing([]string{"http://w1", "http://w2", "http://w3", "http://w4"}, 0)
	asn := r.Assignments(wids)
	if len(asn) != 4 {
		t.Fatalf("assignments for %d workers, want 4", len(asn))
	}
	seen := make(map[uint64]int)
	for wi, part := range asn {
		prev := uint64(0)
		for _, wid := range part {
			if wid <= prev {
				t.Fatalf("worker %d assignment not ascending: %v", wi, part)
			}
			prev = wid
			seen[wid]++
		}
		// OwnedWIDs (the worker's self-derivation) must equal the
		// coordinator's assignment exactly.
		if owned := r.OwnedWIDs(wids, wi); !reflect.DeepEqual(owned, part) {
			t.Fatalf("worker %d: OwnedWIDs %v != Assignments %v", wi, owned, part)
		}
	}
	if len(seen) != len(wids) {
		t.Fatalf("%d wids assigned, want %d (every wid exactly once)", len(seen), len(wids))
	}
	for wid, n := range seen {
		if n != 1 {
			t.Fatalf("wid %d assigned %d times", wid, n)
		}
	}
}

func TestClusterRingSpreadsLoad(t *testing.T) {
	// With default replicas, no worker of a 4-node fleet should own a wildly
	// disproportionate share of 1000 wids. The bound is loose on purpose:
	// the test guards against a broken hash (everything on one node), not
	// distributional perfection.
	r := NewRing([]string{"http://w1", "http://w2", "http://w3", "http://w4"}, 0)
	asn := r.Assignments(testWIDs(1000))
	for wi, part := range asn {
		if len(part) < 50 || len(part) > 600 {
			t.Fatalf("worker %d owns %d of 1000 wids — hash not spreading", wi, len(part))
		}
	}
}

func TestClusterRingEmptyAndUnknown(t *testing.T) {
	r := NewRing(nil, 8)
	if got := r.Owner(7); got != -1 {
		t.Fatalf("empty ring Owner = %d, want -1", got)
	}
	r = NewRing([]string{"http://w1"}, 8)
	if got := r.WorkerIndex("http://nope"); got != -1 {
		t.Fatalf("WorkerIndex(unknown) = %d, want -1", got)
	}
	if got := r.Owner(42); got != 0 {
		t.Fatalf("single-worker ring Owner = %d, want 0", got)
	}
}

func TestClusterRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&WorkerHTTPError{Status: http.StatusInternalServerError}, true},
		{&WorkerHTTPError{Status: http.StatusBadGateway}, true},
		{&WorkerHTTPError{Status: http.StatusGatewayTimeout}, true},
		{&WorkerHTTPError{Status: http.StatusTooManyRequests}, true},
		// Deterministic replies: retrying re-fails identically.
		{&WorkerHTTPError{Status: http.StatusBadRequest}, false},
		{&WorkerHTTPError{Status: http.StatusNotFound}, false},
		{&WorkerHTTPError{Status: http.StatusUnprocessableEntity}, false},
		{nonRetryable(errors.New("ring mismatch")), false},
		// Transport-level failures are transient by default.
		{errors.New("connection refused"), true},
		{fmt.Errorf("wrapped: %w", &WorkerHTTPError{Status: 503}), true},
		{fmt.Errorf("wrapped: %w", nonRetryable(errors.New("x"))), false},
	}
	for _, tc := range cases {
		if got := retryableErr(tc.err); got != tc.want {
			t.Errorf("retryableErr(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestClusterNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no workers succeeded")
	}
	if _, err := New(Config{Workers: []string{"http://w1", "http://w1"}}); err == nil {
		t.Fatal("New with duplicate workers succeeded")
	}
	if _, err := New(Config{Workers: []string{"http://w1", ""}}); err == nil {
		t.Fatal("New with empty worker URL succeeded")
	}
	c, err := New(Config{Workers: []string{"http://w1", "http://w2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Ring().Workers()); got != 2 {
		t.Fatalf("ring has %d workers, want 2", got)
	}
	if c.Ring().Replicas() != DefaultHashReplicas {
		t.Fatalf("replicas = %d, want default %d", c.Ring().Replicas(), DefaultHashReplicas)
	}
}
