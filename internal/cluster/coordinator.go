package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/obs"
	"wlq/internal/resilience"
	"wlq/internal/shard"
)

// Coordinator defaults.
const (
	// DefaultWorkerTimeout bounds one worker request attempt.
	DefaultWorkerTimeout = 5 * time.Second
	// DefaultMaxAttempts is the request attempt cap per worker per query
	// (1 initial try + retries). Networks fail transiently far more often
	// than in-process evaluation does, but each retry holds the client's
	// latency budget, so the default stays low.
	DefaultMaxAttempts = 2
	// DefaultProbeInterval paces the background worker health probes.
	DefaultProbeInterval = 5 * time.Second
	// DefaultMaxTraceSpans caps the span subtree one worker may return on a
	// traced query. Big enough for any realistic plan tree (spans mirror
	// plan nodes, not instances), small enough that a fleet of subtrees
	// cannot balloon a flight-recorder capture.
	DefaultMaxTraceSpans = 2048
)

// Config tunes a coordinator. Workers is required; every other zero field
// resolves to a sensible default.
type Config struct {
	// Workers are the worker base URLs (e.g. "http://10.0.0.7:8080"). The
	// URLs are also the ring identities: placement depends on nothing else.
	Workers []string
	// HashReplicas is the virtual-node count per worker on the consistent
	// hash ring (0 = DefaultHashReplicas).
	HashReplicas int
	// WorkerTimeout deadlines each worker request attempt
	// (0 = DefaultWorkerTimeout).
	WorkerTimeout time.Duration
	// MaxAttempts caps request attempts per worker per query, the first try
	// included (0 = DefaultMaxAttempts).
	MaxAttempts int
	// Backoff schedules the delay between a worker's attempts (zero value =
	// shard backoff defaults: 10ms base, 2x growth, 1s cap, 20% jitter).
	Backoff shard.Backoff
	// BreakerThreshold opens a worker's circuit breaker after this many
	// consecutive failed attempts (0 = shard.DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay
	// (0 = shard.DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// HedgeAfter, when positive, duplicates a worker request that has not
	// answered within the delay and takes whichever response lands first —
	// straggler insurance against a slow connection or a stalled accept
	// queue. The hedge goes to the same worker (wids live on exactly one
	// node), so it cannot help a node that is down, only one that is slow.
	HedgeAfter time.Duration
	// Transport is the HTTP transport for worker requests (nil =
	// http.DefaultTransport). Chaos suites inject faultinject.FlakyRoundTripper
	// here to fail, slow or blackhole exact requests without killing
	// processes.
	Transport http.RoundTripper
	// Sleep waits between attempts (nil = time.Sleep); tests inject a
	// recording no-op.
	Sleep func(time.Duration)
	// Rand draws the backoff jitter uniform in [0,1) (nil = math/rand).
	Rand func() float64
	// DisableTracePropagation turns off distributed tracing: no traceparent
	// header on worker requests, no span subtrees or cost tables in worker
	// responses. The zero value propagates whenever the query carries an
	// obs.Trace.
	DisableTracePropagation bool
	// MaxTraceSpans caps the span subtree each worker may return
	// (0 = DefaultMaxTraceSpans).
	MaxTraceSpans int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.HashReplicas <= 0 {
		c.HashReplicas = DefaultHashReplicas
	}
	if c.WorkerTimeout <= 0 {
		c.WorkerTimeout = DefaultWorkerTimeout
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.MaxTraceSpans <= 0 {
		c.MaxTraceSpans = DefaultMaxTraceSpans
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return c
}

// workerState is one worker's long-lived coordinator-side state: the
// circuit breaker accumulating failure history across queries, and the
// latest health-probe verdict.
type workerState struct {
	name    string
	breaker *shard.Breaker

	mu       sync.Mutex
	probed   bool // at least one probe has run
	healthy  bool
	probeErr string
}

// Stats is a snapshot of the coordinator's fan-out counters.
type Stats struct {
	// Fanouts counts distributed query executions.
	Fanouts uint64 `json:"fanouts"`
	// WorkerRequests counts HTTP requests issued to workers (hedges and
	// retries included); WorkerFailures those that errored.
	WorkerRequests uint64 `json:"worker_requests"`
	WorkerFailures uint64 `json:"worker_failures"`
	// WorkerRetries counts re-attempts after backoff.
	WorkerRetries uint64 `json:"worker_retries"`
	// Hedges counts duplicated straggler requests; HedgeWins those whose
	// duplicate answered first.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	// WorkersSkipped counts per-query worker exclusions by an open breaker.
	WorkersSkipped uint64 `json:"workers_skipped"`
}

// Coordinator fans queries out to the worker fleet and merges the answers.
// It is safe for concurrent use and meant to be long-lived: per-worker
// breakers and health state persist across queries.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	client  *http.Client
	workers []*workerState
	hists   map[string]*durationHist

	fanouts        atomic.Uint64
	workerRequests atomic.Uint64
	workerFailures atomic.Uint64
	workerRetries  atomic.Uint64
	hedges         atomic.Uint64
	hedgeWins      atomic.Uint64
	workersSkipped atomic.Uint64
}

// New builds a coordinator over the configured workers.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	seen := make(map[string]bool, len(cfg.Workers))
	for _, w := range cfg.Workers {
		if w == "" {
			return nil, errors.New("cluster: empty worker URL")
		}
		if seen[w] {
			return nil, fmt.Errorf("cluster: duplicate worker %q", w)
		}
		seen[w] = true
	}
	workers := make([]*workerState, len(cfg.Workers))
	hists := make(map[string]*durationHist, len(cfg.Workers))
	for i, name := range cfg.Workers {
		workers[i] = &workerState{
			name:    name,
			breaker: shard.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			healthy: true, // optimistic until a probe or request says otherwise
		}
		hists[name] = newDurationHist()
	}
	return &Coordinator{
		cfg:  cfg,
		ring: NewRing(cfg.Workers, cfg.HashReplicas),
		// The per-attempt deadline rides the request context, not the
		// client, so hedges and probes can choose their own.
		client:  &http.Client{Transport: cfg.Transport},
		workers: workers,
		hists:   hists,
	}, nil
}

// Ring returns the placement ring.
func (c *Coordinator) Ring() *Ring { return c.ring }

// Stats snapshots the fan-out counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Fanouts:        c.fanouts.Load(),
		WorkerRequests: c.workerRequests.Load(),
		WorkerFailures: c.workerFailures.Load(),
		WorkerRetries:  c.workerRetries.Load(),
		Hedges:         c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		WorkersSkipped: c.workersSkipped.Load(),
	}
}

// Fanout summarizes one distributed execution for the flight recorder and
// the response-side accounting.
type Fanout struct {
	// Workers is the number of workers owning at least one wid this query.
	Workers int `json:"workers"`
	// Attempted counts workers that received at least one request; Succeeded
	// those whose answer is in the merged result; Failed those excluded
	// after exhausting attempts; Skipped those excluded by an open breaker.
	Attempted int `json:"attempted"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	Skipped   int `json:"skipped"`
	// Hedged counts straggler requests duplicated; Retries re-attempts;
	// HedgeWins hedges whose duplicate answered first.
	Hedged    int `json:"hedged"`
	Retries   int `json:"retries"`
	HedgeWins int `json:"hedge_wins"`
	// PerWorker details every worker contacted (or breaker-skipped) this
	// query, in fleet order.
	PerWorker []WorkerCall `json:"per_worker,omitempty"`
	// TraceID is the propagated cross-process trace id ("" when the query
	// was untraced or propagation is disabled).
	TraceID string `json:"trace_id,omitempty"`
	// CostTable is the fleet-wide Lemma 1 table: the per-worker tables of
	// every merged answer summed row-by-row (nil when untraced).
	CostTable []obs.CostRow `json:"-"`
}

// WorkerCall is one worker's outcome within a single distributed query —
// the structured per-worker detail the flight recorder captures.
type WorkerCall struct {
	// Worker is the worker base URL; WIDs how many wids it owned.
	Worker string `json:"worker"`
	WIDs   int    `json:"wids"`
	// Status is "ok", "failed", or "skipped" (breaker).
	Status string `json:"status"`
	// Attempts counts requests sent (hedges excluded); Retries re-attempts
	// after backoff; Hedges duplicated straggler requests; HedgeWon whether
	// a hedge's answer was the one used.
	Attempts int  `json:"attempts"`
	Retries  int  `json:"retries"`
	Hedges   int  `json:"hedges"`
	HedgeWon bool `json:"hedge_won,omitempty"`
	// BreakerSkip marks a worker excluded without any request by an open
	// circuit breaker.
	BreakerSkip bool `json:"breaker_skip,omitempty"`
	// ElapsedUS is the worker-reported evaluation wall time (0 on failure).
	ElapsedUS int64 `json:"elapsed_us"`
	// Incidents is how many incidents the worker contributed; TraceSpans
	// how many spans its returned subtree carried.
	Incidents  int `json:"incidents"`
	TraceSpans int `json:"trace_spans,omitempty"`
	// Error is the terminal failure, when Status != "ok".
	Error string `json:"error,omitempty"`
}

// ExecOptions parameterizes one distributed execution.
type ExecOptions struct {
	// WIDs is the full ascending wid list of the log (the coordinator's
	// local backend supplies it; placement partitions it over the ring).
	WIDs []uint64
	// Strategy optionally names the join implementation for the workers.
	Strategy string
	// Limit is the per-operator per-instance incident cap.
	Limit int
	// Budget is the whole query's budget; it is sliced per active worker.
	Budget resilience.Budget
}

// workerResult is one worker's terminal outcome within a query.
type workerResult struct {
	incs      []incident.Incident
	instances int
	attempts  int
	retries   int
	hedges    int
	hedgeWin  bool
	err       error
	skipped   bool
	elapsedUS int64
	spanCount int
	costTable []obs.CostRow
}

// Execute evaluates the plan across the worker fleet: each worker owning
// wids gets one request (with retries, hedging and breaker admission) and
// the surviving answers merge through incident.NewSet's normalization —
// byte-identical to a single-node evaluation when every worker answers.
//
// The returned error is non-nil only when the whole query is lost (context
// cancelled, or no worker produced an answer). Otherwise the Completeness
// documents coverage exactly as the in-process executor does, with each
// excluded worker's wid set named by envelope and exact ranges.
func (c *Coordinator) Execute(ctx context.Context, logName string, plan pattern.Node, opts ExecOptions, qs *eval.QueryStats) (*incident.Set, *shard.Completeness, Fanout, error) {
	c.fanouts.Add(1)
	assignments := c.ring.Assignments(opts.WIDs)
	// Active workers: those owning at least one wid. Idle workers are not
	// contacted and not counted as shards.
	type active struct {
		wi   int
		wids []uint64
	}
	var fleet []active
	for wi, wids := range assignments {
		if len(wids) > 0 {
			fleet = append(fleet, active{wi: wi, wids: wids})
		}
	}
	comp := &shard.Completeness{Shards: len(fleet)}
	fan := Fanout{Workers: len(fleet)}
	if len(fleet) == 0 {
		comp.Complete = true
		if qs != nil {
			qs.Workers = 1
		}
		return &incident.Set{}, comp, fan, nil
	}

	req := WorkerQueryRequest{
		Log:      logName,
		Plan:     plan.String(),
		Ring:     c.ring.Workers(),
		Replicas: c.ring.Replicas(),
		Strategy: opts.Strategy,
		Limit:    opts.Limit,
		Budget:   ToBudgetDoc(opts.Budget.Slice(len(fleet))),
	}

	// Distributed tracing: mint (or reuse) the query's trace id and ask
	// workers to return their span trees and cost tables. The id travels on
	// a traceparent header per request; the request body only carries the
	// enable flag and the subtree cap.
	tr := obs.FromContext(ctx)
	traceID := ""
	if tr != nil && !c.cfg.DisableTracePropagation {
		traceID = tr.ID()
		req.Trace = true
		req.MaxTraceSpans = c.cfg.MaxTraceSpans
	}
	fan.TraceID = traceID
	scatter := tr.StartSpan("scatter")
	scatter.SetAttr("workers", len(fleet))
	if traceID != "" {
		scatter.SetAttr("trace_id", traceID)
	}

	results := make([]workerResult, len(fleet))
	var wg sync.WaitGroup
	for i, a := range fleet {
		wg.Add(1)
		go func(i int, a active) {
			defer wg.Done()
			results[i] = c.runWorker(ctx, scatter, traceID, a.wi, req, len(a.wids))
		}(i, a)
	}
	wg.Wait()
	scatter.End()

	msp := tr.StartSpan("merge")
	defer msp.End()
	var (
		merged    []incident.Incident
		firstErr  error
		instances int
		tables    [][]obs.CostRow
	)
	fan.PerWorker = make([]WorkerCall, 0, len(fleet))
	for i, r := range results {
		a := fleet[i]
		comp.Retries += r.retries
		fan.Retries += r.retries
		fan.Hedged += r.hedges
		if r.hedgeWin {
			fan.HedgeWins++
		}
		call := WorkerCall{
			Worker:      c.workers[a.wi].name,
			WIDs:        len(a.wids),
			Attempts:    r.attempts,
			Retries:     r.retries,
			Hedges:      r.hedges,
			HedgeWon:    r.hedgeWin,
			BreakerSkip: r.skipped,
			ElapsedUS:   r.elapsedUS,
			Incidents:   len(r.incs),
			TraceSpans:  r.spanCount,
		}
		switch {
		case r.skipped:
			call.Status = "skipped"
			call.Error = r.err.Error()
			comp.Skipped++
			fan.Skipped++
			comp.ExcludedWIDs += len(a.wids)
			comp.Failures = append(comp.Failures, c.outcome(a.wi, a.wids, r))
		case r.err != nil:
			call.Status = "failed"
			call.Error = r.err.Error()
			comp.Attempted++
			fan.Attempted++
			comp.Failed++
			fan.Failed++
			comp.ExcludedWIDs += len(a.wids)
			comp.Failures = append(comp.Failures, c.outcome(a.wi, a.wids, r))
			if firstErr == nil {
				firstErr = fmt.Errorf("worker %s: %w", c.workers[a.wi].name, r.err)
			}
		default:
			call.Status = "ok"
			comp.Attempted++
			fan.Attempted++
			comp.Succeeded++
			fan.Succeeded++
			merged = append(merged, r.incs...)
			instances += r.instances
			if len(r.costTable) > 0 {
				tables = append(tables, r.costTable)
			}
		}
		fan.PerWorker = append(fan.PerWorker, call)
	}
	// Only merged answers feed the fleet table: a failed worker's partial
	// measurements would skew the measured-vs-predicted comparison.
	fan.CostTable = obs.AggregateCostTables(tables...)
	comp.Complete = comp.Succeeded == comp.Shards
	msp.SetAttr("workers_merged", comp.Succeeded)
	msp.SetAttr("incidents", len(merged))
	if qs != nil {
		qs.Workers = len(fleet)
		qs.Shards = len(fleet)
		qs.ShardsFailed = comp.Failed + comp.Skipped
		qs.ShardRetries = comp.Retries
		qs.Instances += instances
		qs.Incidents += len(merged)
	}

	if err := ctx.Err(); err != nil {
		return nil, comp, fan, err
	}
	if comp.Succeeded == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("all %d workers skipped by open circuit breakers", comp.Shards)
		}
		return nil, comp, fan, firstErr
	}
	// Consistent hashing scatters wids across workers, so the concatenation
	// is interleaved; NewSet performs the real merge (normalize + sort),
	// exactly as the in-process executor does under PolicyHash.
	return incident.NewSet(merged...), comp, fan, nil
}

// runWorker drives one worker through breaker admission, the retry loop and
// hedging. Everything the coordinator does for the worker is recorded as
// spans under a per-worker span: a queue-wait span (goroutine scheduling +
// admission + marshal before the first transport write), sibling transport
// spans per request with attempt/hedge annotations, backoff spans between
// retries, and a breaker-skip span when the breaker rejects the worker
// outright. The winning response's own span subtree is grafted under the
// transport span that carried it.
func (c *Coordinator) runWorker(ctx context.Context, parent *obs.Span, traceID string, wi int, req WorkerQueryRequest, assigned int) workerResult {
	w := c.workers[wi]
	wsp := parent.StartChild("worker " + w.name)
	defer wsp.End()
	wsp.SetAttr("wids", assigned)
	qw := wsp.StartChild("queue-wait")
	if !w.breaker.Allow() {
		qw.End()
		c.workersSkipped.Add(1)
		sk := wsp.StartChild("breaker-skip")
		sk.SetAttr("breaker", "open")
		sk.End()
		wsp.SetAttr("status", "skipped")
		return workerResult{
			skipped: true,
			err:     fmt.Errorf("circuit breaker open for worker %s", w.name),
		}
	}
	req.Self = w.name
	body, err := json.Marshal(req)
	if err != nil {
		qw.End()
		wsp.SetAttr("status", "failed")
		return workerResult{attempts: 1, err: fmt.Errorf("encode worker request: %w", err)}
	}
	var res workerResult
	for attempt := 1; ; attempt++ {
		res.attempts = attempt
		qw.End() // idempotent; first attempt ends the queue wait

		resp, winner, hedged, hedgeWon, err := c.call(ctx, wsp, attempt, traceID, w.name, body)
		if hedged {
			res.hedges++
		}
		if hedgeWon {
			res.hedgeWin = true
		}
		if err == nil && resp.WIDsOwned != assigned {
			// The worker's ring view disagrees with ours: merging its answer
			// would silently mis-cover the log. Deterministic, so never retried.
			err = nonRetryable(fmt.Errorf(
				"ring mismatch: worker evaluated %d wids, coordinator assigned %d (membership or replica skew)",
				resp.WIDsOwned, assigned))
			winner.SetAttr("error", err.Error())
			resp = nil
		}
		if err == nil {
			winner.SetAttr("incidents", len(resp.Incidents))
			if traceID != "" && resp.TraceID != "" && resp.TraceID != traceID {
				// Same spirit as the WIDsOwned echo: the worker answered under
				// a different trace context than we sent. Annotate, keep the
				// answer (trace skew is an observability fault, not a data one).
				winner.SetAttr("trace_id_mismatch", resp.TraceID)
			}
			if resp.Spans != nil {
				res.spanCount = obs.CountSpans(resp.Spans)
				obs.Graft(winner, resp.Spans, winner.StartUS)
			}
			w.breaker.Success()
			res.incs = ToIncidents(resp.Incidents)
			res.instances = resp.Instances
			res.elapsedUS = resp.ElapsedUS
			res.costTable = resp.CostTable
			res.err = nil
			wsp.SetAttr("status", "ok")
			return res
		}
		res.err = err
		wsp.SetAttr("status", "failed")
		wsp.SetAttr("error", err.Error())
		// The parent context dying is not a worker fault: don't trip the
		// breaker for it, and don't retry into a cancelled query.
		if ctx.Err() != nil {
			return res
		}
		w.breaker.Failure()
		if !retryableErr(err) || attempt >= c.cfg.MaxAttempts || !w.breaker.Allow() {
			return res
		}
		res.retries++
		c.workerRetries.Add(1)
		delay := c.cfg.Backoff.Delay(attempt, c.cfg.Rand())
		bsp := wsp.StartChild("backoff")
		bsp.SetAttr("delay_ms", delay.Milliseconds())
		bsp.SetAttr("next_attempt", attempt+1)
		c.cfg.Sleep(delay)
		bsp.End()
	}
}

// call performs one attempt against a worker: the primary request, plus —
// when HedgeAfter is set and the primary has not answered in time — one
// duplicate, with whichever lands first winning. The per-attempt timeout
// covers primary and hedge together. Primary and hedge each get their own
// transport span under wsp (siblings, annotated attempt/hedge); the span
// of the request whose result is used is returned so the caller can graft
// the worker's subtree under it. All span writes happen before call
// returns — abandoned requests' spans are closed here, never from their
// still-running goroutines.
func (c *Coordinator) call(ctx context.Context, wsp *obs.Span, attempt int, traceID, worker string, body []byte) (resp *WorkerQueryResponse, winner *obs.Span, hedged, hedgeWon bool, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.WorkerTimeout)
	defer cancel()

	type result struct {
		resp  *WorkerQueryResponse
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	var primarySpan, hedgeSpan *obs.Span
	launch := func(isHedge bool) *obs.Span {
		sp := wsp.StartChild("transport")
		sp.SetAttr("attempt", attempt)
		header := ""
		if traceID != "" {
			spanID := obs.NewSpanID()
			sp.SetAttr("span_id", spanID)
			header = obs.FormatTraceparent(traceID, spanID)
		}
		if isHedge {
			sp.SetAttr("hedge", true)
		}
		go func() {
			r, err := c.post(actx, worker, body, header)
			ch <- result{resp: r, err: err, hedge: isHedge}
		}()
		return sp
	}
	primarySpan = launch(false)
	ended := make(map[*obs.Span]bool, 2)
	// abandon closes the span of a request still in flight when we stop
	// waiting for it (the other request already won); its goroutine will
	// drain into the buffered channel without touching the span again.
	abandon := func() {
		for _, sp := range []*obs.Span{primarySpan, hedgeSpan} {
			if sp != nil && !ended[sp] {
				sp.SetAttr("abandoned", true)
				sp.End()
			}
		}
	}

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(c.cfg.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	outstanding := 1
	var firstErr error
	firstErrSpan := primarySpan
	for {
		select {
		case r := <-ch:
			outstanding--
			spanOf := primarySpan
			if r.hedge {
				spanOf = hedgeSpan
			}
			if r.err != nil {
				spanOf.SetAttr("error", r.err.Error())
			}
			spanOf.End()
			ended[spanOf] = true
			if r.err == nil {
				if r.hedge {
					hedgeWon = true
					c.hedgeWins.Add(1)
				}
				abandon()
				return r.resp, spanOf, hedged, hedgeWon, nil
			}
			if firstErr == nil {
				firstErr = r.err
				firstErrSpan = spanOf
			}
			if outstanding == 0 {
				return nil, firstErrSpan, hedged, false, firstErr
			}
			// The other request (hedge or primary) is still out; wait for it.
		case <-hedgeC:
			hedgeC = nil
			hedged = true
			c.hedges.Add(1)
			outstanding++
			hedgeSpan = launch(true)
		}
	}
}

// post issues one HTTP request to a worker and decodes the reply. The
// traceparent value, when non-empty, propagates the distributed trace
// context. Request duration feeds the per-worker latency histogram either
// way.
func (c *Coordinator) post(ctx context.Context, worker string, body []byte, traceparent string) (*WorkerQueryResponse, error) {
	c.workerRequests.Add(1)
	start := time.Now()
	defer func() {
		if h := c.hists[worker]; h != nil {
			h.observe(time.Since(start))
		}
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(worker, "/")+"/v1/worker/query", bytes.NewReader(body))
	if err != nil {
		c.workerFailures.Add(1)
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	httpResp, err := c.client.Do(req)
	if err != nil {
		c.workerFailures.Add(1)
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		c.workerFailures.Add(1)
		raw, _ := io.ReadAll(io.LimitReader(httpResp.Body, 64<<10))
		var ed WorkerErrorDoc
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &ed) == nil && ed.Error != "" {
			msg = ed.Error
		}
		return nil, &WorkerHTTPError{Status: httpResp.StatusCode, Msg: msg}
	}
	var wr WorkerQueryResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&wr); err != nil {
		c.workerFailures.Add(1)
		return nil, fmt.Errorf("decode worker response: %w", err)
	}
	return &wr, nil
}

// outcome renders one excluded worker's ShardOutcome. The envelope bounds
// the scattered owned set; Ranges names the exact runs when compact enough.
func (c *Coordinator) outcome(wi int, wids []uint64, r workerResult) shard.ShardOutcome {
	return shard.ShardOutcome{
		Shard:    wi,
		WIDMin:   wids[0],
		WIDMax:   wids[len(wids)-1],
		WIDs:     len(wids),
		Attempts: r.attempts,
		Cause:    r.err.Error(),
		Skipped:  r.skipped,
		Worker:   c.workers[wi].name,
		Ranges:   shard.RangesOf(wids),
	}
}

// WorkerHTTPError is a worker reply with a non-200 status.
type WorkerHTTPError struct {
	Status int
	Msg    string
}

// Error implements error.
func (e *WorkerHTTPError) Error() string {
	return fmt.Sprintf("worker returned %d: %s", e.Status, e.Msg)
}

// nonRetryableError marks a deterministic failure the retry loop must not
// re-attempt.
type nonRetryableError struct{ err error }

func (e *nonRetryableError) Error() string { return e.err.Error() }
func (e *nonRetryableError) Unwrap() error { return e.err }

func nonRetryable(err error) error { return &nonRetryableError{err: err} }

// retryableErr classifies a worker attempt failure. Transport-level errors
// (refused, reset, attempt timeout) and 5xx/429 replies are transient and
// worth a backed-off retry; 4xx replies and ring mismatches are
// deterministic — the same request would fail the same way.
func retryableErr(err error) bool {
	var nr *nonRetryableError
	if errors.As(err, &nr) {
		return false
	}
	var he *WorkerHTTPError
	if errors.As(err, &he) {
		return he.Status >= 500 || he.Status == http.StatusTooManyRequests
	}
	return true
}

// WorkerHealth is one worker's live status for /readyz and metrics.
type WorkerHealth struct {
	// Worker is the worker's base URL.
	Worker string `json:"worker"`
	// Healthy is the latest probe verdict (true before any probe has run —
	// optimistic, so a coordinator without probing does not report a
	// healthy fleet as lost).
	Healthy bool `json:"healthy"`
	// Breaker is the worker's circuit-breaker state: closed, open, half-open.
	Breaker string `json:"breaker"`
	// Error is the latest probe failure, when unhealthy.
	Error string `json:"error,omitempty"`
}

// Health snapshots every worker's probe verdict and breaker state.
func (c *Coordinator) Health() []WorkerHealth {
	out := make([]WorkerHealth, len(c.workers))
	for i, w := range c.workers {
		w.mu.Lock()
		out[i] = WorkerHealth{
			Worker:  w.name,
			Healthy: w.healthy,
			Breaker: w.breaker.State().String(),
			Error:   w.probeErr,
		}
		w.mu.Unlock()
	}
	return out
}

// Lost lists workers currently considered lost: probe-unhealthy, or with a
// not-closed circuit breaker. Feeds degraded readiness.
func (c *Coordinator) Lost() []string {
	var lost []string
	for _, w := range c.workers {
		w.mu.Lock()
		unhealthy := w.probed && !w.healthy
		w.mu.Unlock()
		if unhealthy || w.breaker.State() != shard.BreakerClosed {
			lost = append(lost, w.name)
		}
	}
	return lost
}

// OpenBreakers counts workers whose breaker is not closed.
func (c *Coordinator) OpenBreakers() int {
	open := 0
	for _, w := range c.workers {
		if w.breaker.State() != shard.BreakerClosed {
			open++
		}
	}
	return open
}

// ProbeOnce health-checks every worker (GET /healthz, bounded by the worker
// timeout) and records the verdicts. It returns the healthy count. Exposed
// separately from StartProbing so tests and callers can probe
// deterministically.
func (c *Coordinator) ProbeOnce(ctx context.Context) int {
	var wg sync.WaitGroup
	healthy := atomic.Int32{}
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			err := c.probe(ctx, w.name)
			w.mu.Lock()
			w.probed = true
			w.healthy = err == nil
			if err != nil {
				w.probeErr = err.Error()
			} else {
				w.probeErr = ""
				healthy.Add(1)
			}
			w.mu.Unlock()
		}(w)
	}
	wg.Wait()
	return int(healthy.Load())
}

// probe is one GET /healthz round trip.
func (c *Coordinator) probe(ctx context.Context, worker string) error {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.WorkerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet,
		strings.TrimSuffix(worker, "/")+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

// StartProbing launches the background probe loop at the given interval
// (<= 0 means DefaultProbeInterval) until ctx is cancelled.
func (c *Coordinator) StartProbing(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				c.ProbeOnce(ctx)
			}
		}
	}()
}
