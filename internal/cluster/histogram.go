package cluster

import (
	"sync/atomic"
	"time"
)

// Per-worker request-duration histograms backing the
// wlq_worker_query_duration_seconds metric. Buckets are fixed at
// construction so observation is a single atomic increment on the hot
// path; the server renders them as cumulative Prometheus buckets.

// DurationBucketsUS are the per-worker histogram bucket upper bounds in
// microseconds (an overflow bucket catches everything beyond the last).
var DurationBucketsUS = []int64{
	1_000, 5_000, 10_000, 25_000, 50_000, 100_000,
	250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
}

// durationHist is one worker's request-duration histogram.
type durationHist struct {
	buckets []atomic.Uint64 // len(DurationBucketsUS)+1, last = overflow
	count   atomic.Uint64
	sumUS   atomic.Int64
}

func newDurationHist() *durationHist {
	return &durationHist{buckets: make([]atomic.Uint64, len(DurationBucketsUS)+1)}
}

// observe records one request round trip.
func (h *durationHist) observe(d time.Duration) {
	us := int64(d / time.Microsecond)
	i := 0
	for i < len(DurationBucketsUS) && us > DurationBucketsUS[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// WorkerDurations is one worker's histogram snapshot: raw (non-cumulative)
// per-bucket counts aligned with DurationBucketsUS plus one overflow slot.
type WorkerDurations struct {
	Worker  string   `json:"worker"`
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	SumUS   int64    `json:"sum_us"`
}

// Durations snapshots every worker's request-duration histogram, in
// configured worker order.
func (c *Coordinator) Durations() []WorkerDurations {
	out := make([]WorkerDurations, 0, len(c.workers))
	for _, w := range c.workers {
		h := c.hists[w.name]
		s := WorkerDurations{
			Worker:  w.name,
			Buckets: make([]uint64, len(h.buckets)),
			Count:   h.count.Load(),
			SumUS:   h.sumUS.Load(),
		}
		for i := range h.buckets {
			s.Buckets[i] = h.buckets[i].Load()
		}
		out = append(out, s)
	}
	return out
}
