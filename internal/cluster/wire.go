package cluster

import (
	"time"

	"wlq/internal/core/incident"
	"wlq/internal/obs"
	"wlq/internal/resilience"
)

// The coordinator/worker wire protocol. One endpoint does the work:
//
//	POST /v1/worker/query
//
// The request carries the optimized plan TEXT (the coordinator has already
// run the Theorem 2–5 rewriter; workers evaluate the plan verbatim, so every
// worker runs the same plan and the merged answer is digest-identical to a
// single-node evaluation of that plan) plus the ring parameters — the full
// membership list, the replica count, and the receiver's own name. The
// worker recomputes its owned wid set from those, which keeps requests O(1)
// in log size and makes placement self-verifying: the response echoes the
// owned-wid count, and a coordinator seeing a different count knows the
// ring views diverged and treats the answer as a worker fault rather than
// silently merging a mis-partitioned result.

// WorkerQueryRequest is the POST /v1/worker/query body.
type WorkerQueryRequest struct {
	// Log names the log on the worker (workers load the same -log specs as
	// the coordinator).
	Log string `json:"log"`
	// Plan is the optimized pattern text, evaluated verbatim (no rewrite).
	Plan string `json:"plan"`
	// Ring is the full worker membership (names, i.e. base URLs); Replicas
	// the virtual-node count; Self the receiving worker's own name. The
	// worker evaluates exactly the wids NewRing(Ring, Replicas) assigns Self.
	Ring     []string `json:"ring"`
	Replicas int      `json:"replicas"`
	Self     string   `json:"self"`
	// Strategy optionally overrides the join implementation ("merge"/"naive").
	Strategy string `json:"strategy,omitempty"`
	// Limit is the per-operator per-instance incident cap (0 = none).
	Limit int `json:"limit,omitempty"`
	// Budget is this worker's slice of the query budget.
	Budget BudgetDoc `json:"budget,omitempty"`
	// Trace asks the worker to run its evaluation under an obs.Trace and
	// return the span tree plus Lemma 1 cost table in the response. The
	// trace/parent-span ids travel separately, on the Traceparent header.
	Trace bool `json:"trace,omitempty"`
	// MaxTraceSpans caps the span subtree the worker may return (0 = the
	// worker's default cap). Oversized trees are pruned pre-order and the
	// subtree root annotated with truncated_spans.
	MaxTraceSpans int `json:"max_trace_spans,omitempty"`
}

// BudgetDoc is resilience.Budget in wire form (wall time in milliseconds).
type BudgetDoc struct {
	MaxComparisons uint64 `json:"max_comparisons,omitempty"`
	MaxOutputs     uint64 `json:"max_outputs,omitempty"`
	MaxWallMS      int64  `json:"max_wall_ms,omitempty"`
	MaxResultBytes uint64 `json:"max_result_bytes,omitempty"`
}

// ToBudgetDoc converts a budget for the wire.
func ToBudgetDoc(b resilience.Budget) BudgetDoc {
	return BudgetDoc{
		MaxComparisons: b.MaxComparisons,
		MaxOutputs:     b.MaxOutputs,
		MaxWallMS:      b.MaxWallTime.Milliseconds(),
		MaxResultBytes: b.MaxResultBytes,
	}
}

// Budget converts the wire form back.
func (d BudgetDoc) Budget() resilience.Budget {
	return resilience.Budget{
		MaxComparisons: d.MaxComparisons,
		MaxOutputs:     d.MaxOutputs,
		MaxWallTime:    time.Duration(d.MaxWallMS) * time.Millisecond,
		MaxResultBytes: d.MaxResultBytes,
	}
}

// IncidentDoc is the wire form of one incident.
type IncidentDoc struct {
	WID  uint64   `json:"wid"`
	Seqs []uint64 `json:"seqs"`
}

// WorkerQueryResponse is the POST /v1/worker/query success body.
type WorkerQueryResponse struct {
	// Worker echoes the Self the worker evaluated as.
	Worker string `json:"worker"`
	// WIDsOwned is how many wids the worker's ring view assigned it — the
	// coordinator cross-checks this against its own assignment.
	WIDsOwned int `json:"wids_owned"`
	// Instances is the number of workflow instances actually evaluated.
	Instances int `json:"instances"`
	// Incidents are the worker's wid-local answers.
	Incidents []IncidentDoc `json:"incidents"`
	// ElapsedUS is the worker-side evaluation wall time.
	ElapsedUS int64 `json:"elapsed_us"`
	// TraceID echoes the propagated trace id (from the Traceparent request
	// header) when the worker traced; the coordinator cross-checks it the
	// same way WIDsOwned cross-checks placement.
	TraceID string `json:"trace_id,omitempty"`
	// Spans is the worker's span tree for this evaluation, offsets on the
	// worker's own clock; the coordinator grafts it into the query trace.
	// Present only when the request asked for tracing.
	Spans *obs.Span `json:"spans,omitempty"`
	// CostTable is the worker's per-operator Lemma 1 measured-vs-predicted
	// table, which the coordinator aggregates fleet-wide. The worker does
	// NOT flush these measurements into its own statistics registry — the
	// final disposition (complete vs degraded-206) is only known at the
	// coordinator, whose hygiene gate decides whether the fleet table feeds
	// the adaptive cost model.
	CostTable []obs.CostRow `json:"cost_table,omitempty"`
}

// ToIncidents converts wire incidents back to incident values.
func ToIncidents(docs []IncidentDoc) []incident.Incident {
	out := make([]incident.Incident, len(docs))
	for i, d := range docs {
		out[i] = incident.New(d.WID, d.Seqs...)
	}
	return out
}

// FromIncidents converts incident values to wire form.
func FromIncidents(incs []incident.Incident) []IncidentDoc {
	out := make([]IncidentDoc, len(incs))
	for i, inc := range incs {
		out[i] = IncidentDoc{WID: inc.WID(), Seqs: inc.Seqs()}
	}
	return out
}

// WorkerErrorDoc is the worker's error envelope (any non-200 status).
type WorkerErrorDoc struct {
	Error string `json:"error"`
	// BudgetDimension is set on a 422 budget abort.
	BudgetDimension string `json:"budget_dimension,omitempty"`
	// IncidentID correlates a worker-side recovered panic (500).
	IncidentID string `json:"incident_id,omitempty"`
}
