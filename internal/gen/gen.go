// Package gen builds synthetic workloads for tests and for the benchmark
// suite: random valid logs with controlled shape (instances, length,
// alphabet, skew, interleaving), precisely shaped single-instance logs for
// the Lemma 1 operator sweeps, and the adversarial log/pattern pair that
// attains Theorem 1's O(m^k) worst case.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

// Alphabet returns n synthetic activity names Act00..Act(n-1).
func Alphabet(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("Act%02d", i)
	}
	return names
}

// LogParams shapes RandomLog output.
type LogParams struct {
	// Instances is the number of workflow instances (≥ 1).
	Instances int
	// MeanLength is the mean number of activity records per instance
	// (exponential-ish: uniform in [1, 2·MeanLength)).
	MeanLength int
	// Alphabet lists the activity names to draw from; empty means
	// Alphabet(8).
	Alphabet []string
	// Skew ≥ 0 biases activity choice: 0 is uniform; larger values
	// concentrate probability on the low-index names (Zipf-like, s=Skew).
	Skew float64
	// CompleteFraction of instances receive an END record; the zero value
	// means all of them.
	CompleteFraction float64
	// Seed drives all randomness.
	Seed int64
}

// RandomLog generates a valid random log: instance traces of random
// activities, interleaved uniformly at random.
func RandomLog(p LogParams) (*wlog.Log, error) {
	if p.Instances < 1 {
		return nil, fmt.Errorf("gen: Instances %d < 1", p.Instances)
	}
	if p.MeanLength < 1 {
		return nil, fmt.Errorf("gen: MeanLength %d < 1", p.MeanLength)
	}
	alphabet := p.Alphabet
	if len(alphabet) == 0 {
		alphabet = Alphabet(8)
	}
	complete := p.CompleteFraction
	if complete == 0 {
		complete = 1
	}
	if complete < 0 || complete > 1 {
		return nil, fmt.Errorf("gen: CompleteFraction %g outside [0,1]", p.CompleteFraction)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	weights := zipfWeights(len(alphabet), p.Skew)

	type inst struct {
		wid       uint64
		remaining int
		complete  bool
	}
	var b wlog.Builder
	active := make([]*inst, p.Instances)
	for i := range active {
		active[i] = &inst{
			wid:       b.Start(),
			remaining: 1 + rng.Intn(2*p.MeanLength),
			complete:  rng.Float64() < complete,
		}
	}
	for len(active) > 0 {
		i := rng.Intn(len(active))
		in := active[i]
		act := alphabet[weightedPick(rng, weights)]
		if err := b.Emit(in.wid, act, nil, nil); err != nil {
			return nil, err
		}
		in.remaining--
		if in.remaining == 0 {
			if in.complete {
				if err := b.End(in.wid); err != nil {
					return nil, err
				}
			}
			active = append(active[:i], active[i+1:]...)
		}
	}
	return b.Build()
}

// MustRandomLog is RandomLog, panicking on error (fixtures, benchmarks).
func MustRandomLog(p LogParams) *wlog.Log {
	l, err := RandomLog(p)
	if err != nil {
		panic(err)
	}
	return l
}

// zipfWeights returns Zipf-like weights w_i ∝ 1/(i+1)^s; s=0 is uniform.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

func weightedPick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	pick := rng.Float64() * total
	for i, w := range weights {
		pick -= w
		if pick < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Blocks builds a single-instance log whose activity trace is the
// concatenation of count copies of each name, in argument order:
// Blocks("A", 3, "B", 2) yields A A A B B. It is the shape used by the
// Lemma 1 sequential/parallel sweeps where |incL(A)| and |incL(B)| must be
// controlled exactly.
func Blocks(pairs ...any) *wlog.Log {
	if len(pairs)%2 != 0 {
		panic("gen.Blocks: want name/count pairs")
	}
	var b wlog.Builder
	wid := b.Start()
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("gen.Blocks: name must be a string")
		}
		count, ok := pairs[i+1].(int)
		if !ok || count < 0 {
			panic("gen.Blocks: count must be a non-negative int")
		}
		for n := 0; n < count; n++ {
			if err := b.Emit(wid, name, nil, nil); err != nil {
				panic(err)
			}
		}
	}
	if err := b.End(wid); err != nil {
		panic(err)
	}
	return b.MustBuild()
}

// Alternating builds a single-instance log cycling through names `rounds`
// times: Alternating([]string{"A","B"}, 3) yields A B A B A B. It is the
// shape used by the consecutive sweep, where each adjacent (A,B) pair is a
// match.
func Alternating(names []string, rounds int) *wlog.Log {
	var b wlog.Builder
	wid := b.Start()
	for r := 0; r < rounds; r++ {
		for _, name := range names {
			if err := b.Emit(wid, name, nil, nil); err != nil {
				panic(err)
			}
		}
	}
	if err := b.End(wid); err != nil {
		panic(err)
	}
	return b.MustBuild()
}

// WorstCaseActivity is the activity name used by the Theorem 1 workload.
const WorstCaseActivity = "t"

// WorstCaseLog builds the Theorem 1 adversarial log: one instance whose m
// activity records all carry the same activity name t.
func WorstCaseLog(m int) *wlog.Log {
	return Blocks(WorstCaseActivity, m)
}

// WorstCasePattern builds the Theorem 1 adversarial pattern
// ((...((t ⊕ t) ⊕ t)...) ⊕ t) with k parallel operators (k+1 atoms).
func WorstCasePattern(k int) pattern.Node {
	atoms := make([]pattern.Node, k+1)
	for i := range atoms {
		atoms[i] = pattern.NewAtom(WorstCaseActivity)
	}
	return pattern.Combine(pattern.OpParallel, atoms...)
}

// ChainPattern folds the activity names left-associatively under op.
func ChainPattern(op pattern.Op, names ...string) pattern.Node {
	nodes := make([]pattern.Node, len(names))
	for i, n := range names {
		nodes[i] = pattern.NewAtom(n)
	}
	return pattern.Combine(op, nodes...)
}

// PatternParams shapes RandomPattern output.
type PatternParams struct {
	// Operators is the number of operator nodes (k of Theorem 1); the
	// pattern has Operators+1 atoms.
	Operators int
	// Alphabet lists the activity names to draw from; empty means
	// Alphabet(8).
	Alphabet []string
	// NegateProb is the probability an atom is negated.
	NegateProb float64
	// OpWeights gives relative weights for ⊙, ≺, ⊗, ⊕ in that order;
	// nil means uniform.
	OpWeights []float64
}

// RandomPattern generates a random pattern with exactly p.Operators
// operator nodes, shaped as a uniformly random binary tree.
func RandomPattern(rng *rand.Rand, p PatternParams) pattern.Node {
	alphabet := p.Alphabet
	if len(alphabet) == 0 {
		alphabet = Alphabet(8)
	}
	weights := p.OpWeights
	if weights == nil {
		weights = []float64{1, 1, 1, 1}
	}
	ops := []pattern.Op{
		pattern.OpConsecutive, pattern.OpSequential,
		pattern.OpChoice, pattern.OpParallel,
	}
	var build func(k int) pattern.Node
	build = func(k int) pattern.Node {
		if k == 0 {
			name := alphabet[rng.Intn(len(alphabet))]
			if rng.Float64() < p.NegateProb {
				return pattern.NewNegAtom(name)
			}
			return pattern.NewAtom(name)
		}
		left := rng.Intn(k) // operators in the left subtree
		return &pattern.Binary{
			Op:    ops[weightedPick(rng, weights)],
			Left:  build(left),
			Right: build(k - 1 - left),
		}
	}
	return build(p.Operators)
}

// SeqString renders n as a compact label for benchmark names, e.g. "1e3".
func SeqString(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return strconv.Itoa(n/1000000) + "e6"
	case n >= 1000 && n%1000 == 0:
		return strconv.Itoa(n/1000) + "e3"
	default:
		return strconv.Itoa(n)
	}
}
