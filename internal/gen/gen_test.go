package gen

import (
	"math/rand"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
)

func TestAlphabet(t *testing.T) {
	a := Alphabet(3)
	if len(a) != 3 || a[0] != "Act00" || a[2] != "Act02" {
		t.Errorf("Alphabet(3) = %v", a)
	}
}

func TestRandomLogValidAndSized(t *testing.T) {
	l, err := RandomLog(LogParams{Instances: 10, MeanLength: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("invalid log: %v", err)
	}
	if got := len(l.WIDs()); got != 10 {
		t.Errorf("instances = %d, want 10", got)
	}
	// Rough size check: 10 instances with mean 20 activities plus
	// START/END records each.
	if l.Len() < 10*2 || l.Len() > 10*(2*20+2) {
		t.Errorf("suspicious log size %d", l.Len())
	}
}

func TestRandomLogDeterministic(t *testing.T) {
	p := LogParams{Instances: 5, MeanLength: 8, Seed: 42}
	a := MustRandomLog(p)
	b := MustRandomLog(p)
	if !a.Equal(b) {
		t.Error("same seed produced different logs")
	}
	p.Seed = 43
	if a.Equal(MustRandomLog(p)) {
		t.Error("different seeds produced identical logs")
	}
}

func TestRandomLogErrors(t *testing.T) {
	bad := []LogParams{
		{Instances: 0, MeanLength: 5},
		{Instances: 1, MeanLength: 0},
		{Instances: 1, MeanLength: 5, CompleteFraction: 2},
	}
	for _, p := range bad {
		if _, err := RandomLog(p); err == nil {
			t.Errorf("RandomLog(%+v): want error", p)
		}
	}
}

func TestRandomLogSkewConcentrates(t *testing.T) {
	alphabet := Alphabet(6)
	uniform := MustRandomLog(LogParams{Instances: 20, MeanLength: 50, Alphabet: alphabet, Seed: 7})
	skewed := MustRandomLog(LogParams{Instances: 20, MeanLength: 50, Alphabet: alphabet, Skew: 2.0, Seed: 7})
	count := func(lix *eval.Index, act string) int { return lix.ActivityCount(act) }
	uix, six := eval.NewIndex(uniform), eval.NewIndex(skewed)
	uShare := float64(count(uix, "Act00")) / float64(uniform.Len())
	sShare := float64(count(six, "Act00")) / float64(skewed.Len())
	if sShare <= uShare {
		t.Errorf("skew did not concentrate: uniform %.3f, skewed %.3f", uShare, sShare)
	}
}

func TestRandomLogCompleteFraction(t *testing.T) {
	l := MustRandomLog(LogParams{Instances: 30, MeanLength: 4, CompleteFraction: 0.5, Seed: 5})
	complete := 0
	for _, wid := range l.WIDs() {
		if l.InstanceComplete(wid) {
			complete++
		}
	}
	if complete == 0 || complete == 30 {
		t.Errorf("complete = %d of 30 at fraction 0.5", complete)
	}
}

func TestBlocks(t *testing.T) {
	l := Blocks("A", 3, "B", 2)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	ix := eval.NewIndex(l)
	if ix.ActivityCount("A") != 3 || ix.ActivityCount("B") != 2 {
		t.Errorf("counts wrong: A=%d B=%d", ix.ActivityCount("A"), ix.ActivityCount("B"))
	}
	// Sequential A->B must produce exactly 3*2 incidents on block layout.
	got := eval.EvalSet(ix, pattern.MustParse("A -> B"))
	if got.Len() != 6 {
		t.Errorf("A->B on blocks = %d incidents, want 6", got.Len())
	}
}

func TestBlocksPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Blocks("A") },
		func() { Blocks(1, 2) },
		func() { Blocks("A", -1) },
		func() { Blocks("A", "B") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestAlternating(t *testing.T) {
	l := Alternating([]string{"A", "B"}, 3)
	ix := eval.NewIndex(l)
	got := eval.EvalSet(ix, pattern.MustParse("A . B"))
	if got.Len() != 3 {
		t.Errorf("A.B on alternating = %d, want 3", got.Len())
	}
}

func TestWorstCase(t *testing.T) {
	l := WorstCaseLog(5)
	if l.Len() != 7 { // START + 5 + END
		t.Errorf("WorstCaseLog(5) has %d records", l.Len())
	}
	p := WorstCasePattern(2)
	if pattern.Operators(p) != 2 {
		t.Errorf("WorstCasePattern(2) has %d operators", pattern.Operators(p))
	}
	if got := p.String(); got != "t & t & t" {
		t.Errorf("pattern = %q", got)
	}
	// incL((t⊕t)⊕t) on m=5: ordered 3-subsets of 5 records as sets = C(5,3).
	ix := eval.NewIndex(l)
	got := eval.EvalSet(ix, p)
	if got.Len() != 10 {
		t.Errorf("worst case incidents = %d, want C(5,3)=10", got.Len())
	}
}

func TestChainPattern(t *testing.T) {
	p := ChainPattern(pattern.OpSequential, "A", "B", "C")
	if p.String() != "A -> B -> C" {
		t.Errorf("ChainPattern = %s", p)
	}
}

func TestRandomPatternOperatorCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 0; k <= 8; k++ {
		p := RandomPattern(rng, PatternParams{Operators: k})
		if got := pattern.Operators(p); got != k {
			t.Errorf("RandomPattern(k=%d) has %d operators", k, got)
		}
	}
}

func TestRandomPatternNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sawNeg := false
	for i := 0; i < 50 && !sawNeg; i++ {
		p := RandomPattern(rng, PatternParams{Operators: 3, NegateProb: 0.5})
		for _, a := range pattern.Atoms(p) {
			if a.Negated {
				sawNeg = true
			}
		}
	}
	if !sawNeg {
		t.Error("NegateProb=0.5 never produced a negated atom")
	}
}

func TestRandomPatternOpWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Only sequential allowed.
	for i := 0; i < 20; i++ {
		p := RandomPattern(rng, PatternParams{Operators: 4, OpWeights: []float64{0.0001, 1000, 0.0001, 0.0001}})
		pattern.Walk(p, func(n pattern.Node) bool {
			if b, ok := n.(*pattern.Binary); ok && b.Op != pattern.OpSequential {
				t.Fatalf("unexpected operator %v", b.Op)
			}
			return true
		})
	}
}

func TestSeqString(t *testing.T) {
	tests := map[int]string{
		7: "7", 1000: "1e3", 25000: "25e3", 2000000: "2e6", 1500: "1500",
	}
	for n, want := range tests {
		if got := SeqString(n); got != want {
			t.Errorf("SeqString(%d) = %q, want %q", n, got, want)
		}
	}
}
