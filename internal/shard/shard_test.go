package shard

import (
	"reflect"
	"runtime"
	"testing"
)

func seqWIDs(n int) []uint64 {
	wids := make([]uint64, n)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}
	return wids
}

// coverage asserts the shards form an exact partition of wids: every wid in
// exactly one shard, nothing added, nothing lost.
func coverage(t *testing.T, wids []uint64, shards []Shard) {
	t.Helper()
	seen := make(map[uint64]int)
	for _, sh := range shards {
		if len(sh.WIDs) == 0 {
			t.Fatalf("shard %d is empty (empty shards must be dropped)", sh.ID)
		}
		for _, w := range sh.WIDs {
			seen[w]++
		}
		min, max := sh.WIDs[0], sh.WIDs[0]
		for _, w := range sh.WIDs {
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
		if sh.MinWID != min || sh.MaxWID != max {
			t.Fatalf("shard %d bounds [%d,%d] don't match members [%d,%d]",
				sh.ID, sh.MinWID, sh.MaxWID, min, max)
		}
	}
	for _, w := range wids {
		if seen[w] != 1 {
			t.Fatalf("wid %d appears in %d shards, want exactly 1", w, seen[w])
		}
	}
	if len(seen) != len(wids) {
		t.Fatalf("shards cover %d wids, want %d", len(seen), len(wids))
	}
	for i, sh := range shards {
		if sh.ID != i {
			t.Fatalf("shard at position %d has ID %d, want sequential ids", i, sh.ID)
		}
	}
}

func TestShardPartitionRange(t *testing.T) {
	wids := seqWIDs(10)
	shards := Partition(wids, 4, PolicyRange)
	if len(shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(shards))
	}
	coverage(t, wids, shards)
	// Contiguous ceil-division chunks: 3,3,3,1.
	wantSizes := []int{3, 3, 3, 1}
	prevMax := uint64(0)
	for i, sh := range shards {
		if len(sh.WIDs) != wantSizes[i] {
			t.Errorf("shard %d has %d wids, want %d", i, len(sh.WIDs), wantSizes[i])
		}
		if sh.MinWID <= prevMax {
			t.Errorf("shard %d range [%d,%d] overlaps or precedes previous max %d",
				i, sh.MinWID, sh.MaxWID, prevMax)
		}
		prevMax = sh.MaxWID
	}
}

func TestShardPartitionHash(t *testing.T) {
	wids := seqWIDs(100)
	shards := Partition(wids, 4, PolicyHash)
	coverage(t, wids, shards)
	if len(shards) < 2 {
		t.Fatalf("hash partition of 100 wids into 4 produced %d shards; want spread", len(shards))
	}
	// Deterministic across calls (and, because the hash is FNV-1a over the
	// wid bytes, across processes — no per-process seed).
	again := Partition(wids, 4, PolicyHash)
	if len(again) != len(shards) {
		t.Fatalf("hash partition not deterministic: %d vs %d shards", len(again), len(shards))
	}
	for i := range shards {
		if len(again[i].WIDs) != len(shards[i].WIDs) {
			t.Fatalf("hash partition not deterministic at shard %d", i)
		}
		for j := range shards[i].WIDs {
			if again[i].WIDs[j] != shards[i].WIDs[j] {
				t.Fatalf("hash partition not deterministic at shard %d member %d", i, j)
			}
		}
	}
}

func TestShardPartitionEdgeCases(t *testing.T) {
	if got := Partition(nil, 4, PolicyRange); got != nil {
		t.Errorf("Partition(nil) = %v, want nil", got)
	}
	// More shards than wids: one wid per shard, no empties.
	shards := Partition(seqWIDs(3), 8, PolicyRange)
	if len(shards) != 3 {
		t.Errorf("Partition(3 wids, 8) produced %d shards, want 3", len(shards))
	}
	coverage(t, seqWIDs(3), shards)
	// n <= 0 defaults to GOMAXPROCS (still capped by the wid count).
	wids := seqWIDs(1000)
	shards = Partition(wids, 0, PolicyRange)
	want := runtime.GOMAXPROCS(0)
	if want > 1000 {
		want = 1000
	}
	if len(shards) != want {
		t.Errorf("Partition(n=0) produced %d shards, want GOMAXPROCS=%d", len(shards), want)
	}
	coverage(t, wids, shards)
	// Single shard is the degenerate whole-log domain.
	shards = Partition(seqWIDs(5), 1, PolicyHash)
	if len(shards) != 1 || len(shards[0].WIDs) != 5 {
		t.Errorf("Partition(n=1) = %+v, want one shard of 5", shards)
	}
}

func TestShardRangeString(t *testing.T) {
	cases := []struct {
		sh   Shard
		want string
	}{
		{Shard{MinWID: 7, MaxWID: 7, WIDs: []uint64{7}}, "wid 7"},
		{Shard{MinWID: 3, MaxWID: 9, WIDs: []uint64{3, 9}}, "wids 3–9"},
		{Shard{}, "∅"},
	}
	for _, c := range cases {
		if got := c.sh.RangeString(); got != c.want {
			t.Errorf("RangeString() = %q, want %q", got, c.want)
		}
	}
}

func TestShardParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyRange, true},
		{"range", PolicyRange, true},
		{"hash", PolicyHash, true},
		{"banana", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePolicy(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, p := range []Policy{PolicyRange, PolicyHash} {
		if rt, err := ParsePolicy(p.String()); err != nil || rt != p {
			t.Errorf("ParsePolicy(%v.String()) = %v, %v; want round-trip", p, rt, err)
		}
	}
}

func TestRangesOf(t *testing.T) {
	cases := []struct {
		name string
		wids []uint64
		want []WIDRange
	}{
		{"empty", nil, nil},
		{"single contiguous run is the envelope", []uint64{3, 4, 5, 6}, nil},
		{"single wid", []uint64{9}, nil},
		{"two runs", []uint64{1, 2, 5, 6, 7},
			[]WIDRange{{Min: 1, Max: 2}, {Min: 5, Max: 7}}},
		{"scattered", []uint64{1, 3, 5},
			[]WIDRange{{Min: 1, Max: 1}, {Min: 3, Max: 3}, {Min: 5, Max: 5}}},
	}
	for _, tc := range cases {
		if got := RangesOf(tc.wids); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: RangesOf(%v) = %v, want %v", tc.name, tc.wids, got, tc.want)
		}
	}
	// Past MaxOutcomeRanges runs the exact encoding stops paying for itself:
	// fall back to the envelope (nil).
	var sparse []uint64
	for i := 0; i < MaxOutcomeRanges+1; i++ {
		sparse = append(sparse, uint64(i*2))
	}
	if got := RangesOf(sparse); got != nil {
		t.Errorf("RangesOf(%d runs) = %d ranges, want nil", len(sparse), len(got))
	}
}
