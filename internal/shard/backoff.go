package shard

import "time"

// Backoff defaults, used by Backoff.withDefaults for zero fields.
const (
	DefaultBackoffBase   = 10 * time.Millisecond
	DefaultBackoffMax    = time.Second
	DefaultBackoffFactor = 2.0
	DefaultBackoffJitter = 0.2
)

// Backoff is a capped exponential backoff schedule with proportional
// jitter: the delay before retry attempt a (1-based) is
//
//	min(Base·Factor^(a−1), Max) · (1 + Jitter·(2u−1))
//
// with u drawn uniformly from [0,1). The cap applies to the raw exponential
// term, so the jittered delay stays within ±Jitter of Max once the schedule
// saturates. Jitter matters under correlated failure: when every shard of
// every in-flight query retries a recovering dependency, uniform spread is
// the difference between a ramp and a thundering herd.
type Backoff struct {
	// Base is the delay before the first retry (0 = DefaultBackoffBase).
	Base time.Duration
	// Max caps the raw exponential delay (0 = DefaultBackoffMax).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (0 = DefaultBackoffFactor;
	// values below 1 are raised to 1, i.e. constant delay).
	Factor float64
	// Jitter is the proportional spread in [0,1): each delay is scaled by
	// a uniform factor in [1−Jitter, 1+Jitter). Negative disables jitter;
	// 0 means DefaultBackoffJitter.
	Jitter float64
}

// withDefaults resolves zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = DefaultBackoffBase
	}
	if b.Max <= 0 {
		b.Max = DefaultBackoffMax
	}
	if b.Factor == 0 {
		b.Factor = DefaultBackoffFactor
	}
	if b.Factor < 1 {
		b.Factor = 1
	}
	if b.Jitter == 0 {
		b.Jitter = DefaultBackoffJitter
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// Delay returns the backoff before retry attempt a (1-based), using u in
// [0,1) as the jitter draw — the caller supplies randomness, so tests pass
// fixed values and get exact delays.
func (b Backoff) Delay(attempt int, u float64) time.Duration {
	b = b.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	raw := float64(b.Base)
	for i := 1; i < attempt; i++ {
		raw *= b.Factor
		if raw >= float64(b.Max) {
			break
		}
	}
	if raw > float64(b.Max) {
		raw = float64(b.Max)
	}
	d := time.Duration(raw * (1 + b.Jitter*(2*u-1)))
	if d < 0 {
		d = 0
	}
	return d
}
