package shard

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/resilience"
	"wlq/internal/wlog"
)

// buildLog builds one workflow instance per entry of pairs, instance i
// holding pairs[i] interleaved A/B activity pairs. Builder wids are
// sequential from 1, so with PolicyRange and 4 shards over 16 instances the
// shards are exactly wids 1–4, 5–8, 9–12, 13–16.
func buildLog(t *testing.T, pairs []int) *wlog.Log {
	t.Helper()
	var b wlog.Builder
	for _, n := range pairs {
		wid := b.Start()
		for j := 0; j < n; j++ {
			if err := b.Emit(wid, "A", nil, nil); err != nil {
				t.Fatal(err)
			}
			if err := b.Emit(wid, "B", nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.End(wid); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func uniformPairs(instances, n int) []int {
	p := make([]int, instances)
	for i := range p {
		p[i] = n
	}
	return p
}

// detCfg returns a fully deterministic executor config: no real sleeping
// (delays are recorded instead), fixed jitter draw.
func detCfg(shards int) (Config, *[]time.Duration) {
	var (
		mu    sync.Mutex
		slept []time.Duration
	)
	cfg := Config{
		Shards: shards,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
		Rand: func() float64 { return 0.5 }, // jitter factor exactly 1
	}
	return cfg, &slept
}

// widHook installs an eval hook that panics persistently for every wid
// admitted by match, and removes it on test cleanup.
func widHook(t *testing.T, match func(wid uint64) bool) {
	t.Helper()
	eval.SetEvalHook(func(wid uint64) {
		if match(wid) {
			panic("chaos: injected shard fault")
		}
	})
	t.Cleanup(func() { eval.SetEvalHook(nil) })
}

// filterBelow keeps the incidents of wids < cut — the expected surviving
// result when the top shard is lost.
func filterBelow(s *incident.Set, cut uint64) *incident.Set {
	var keep []incident.Incident
	for _, o := range s.Incidents() {
		if o.WID() < cut {
			keep = append(keep, o)
		}
	}
	return incident.NewSet(keep...)
}

// TestShardChaosEqualUnsharded is the no-fault half of the acceptance
// criterion: for all four operators and both policies, the sharded result
// is byte-identical to the single-domain evaluator's.
func TestShardChaosEqualUnsharded(t *testing.T) {
	ix := eval.NewIndex(buildLog(t, uniformPairs(16, 3)))
	queries := []string{"A . B", "A -> B", "A | B", "A & B"}
	for _, policy := range []Policy{PolicyRange, PolicyHash} {
		for _, q := range queries {
			p := pattern.MustParse(q)
			want, err := eval.New(ix, eval.Options{}).EvalParallelCtx(context.Background(), p, 1, nil)
			if err != nil {
				t.Fatalf("%s: unsharded eval: %v", q, err)
			}
			cfg, _ := detCfg(4)
			cfg.Policy = policy
			x := NewExecutor(ix, cfg)
			var stats eval.QueryStats
			got, comp, err := x.Execute(context.Background(), p, eval.Options{}, &stats)
			if err != nil {
				t.Fatalf("%s/%v: sharded eval: %v", q, policy, err)
			}
			if !comp.Complete || comp.Succeeded != 4 || comp.Failed != 0 || comp.Skipped != 0 {
				t.Fatalf("%s/%v: completeness = %+v, want 4/4 complete", q, policy, comp)
			}
			if !got.Equal(want) {
				t.Fatalf("%s/%v: sharded result differs from unsharded:\n got %s\nwant %s",
					q, policy, got, want)
			}
			if got.String() != want.String() {
				t.Fatalf("%s/%v: sharded rendering differs from unsharded", q, policy)
			}
			if stats.Shards != 4 || stats.ShardsFailed != 0 || stats.ShardRetries != 0 {
				t.Fatalf("%s/%v: stats = %+v, want 4 clean shards", q, policy, stats)
			}
			if want.Len() > 0 && stats.Incidents != want.Len() {
				t.Fatalf("%s/%v: stats.Incidents = %d, want %d", q, policy, stats.Incidents, want.Len())
			}
		}
	}
}

// TestShardChaosPanicShardPartial is the fault half of the acceptance
// criterion: one of four shards panics persistently; the query survives,
// returns the other shards' incidents, and Completeness names the excluded
// wid range and the cause.
func TestShardChaosPanicShardPartial(t *testing.T) {
	p := pattern.MustParse("A -> B")
	ix := eval.NewIndex(buildLog(t, uniformPairs(16, 3)))
	full, err := eval.New(ix, eval.Options{}).EvalParallelCtx(context.Background(), p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := filterBelow(full, 13) // shard 3 (wids 13–16) is lost

	widHook(t, func(wid uint64) bool { return wid >= 13 })
	cfg, slept := detCfg(4)
	cfg.MaxAttempts = 2
	x := NewExecutor(ix, cfg)

	var stats eval.QueryStats
	got, comp, err := x.Execute(context.Background(), p, eval.Options{}, &stats)
	if err != nil {
		t.Fatalf("Execute returned error %v; partial results must not be errors", err)
	}
	if got == nil || !got.Equal(want) {
		t.Fatalf("partial result = %v, want the three surviving shards' incidents %v", got, want)
	}
	if comp.Complete {
		t.Fatal("Completeness.Complete = true with a failed shard")
	}
	if comp.Shards != 4 || comp.Attempted != 4 || comp.Succeeded != 3 ||
		comp.Failed != 1 || comp.Skipped != 0 {
		t.Fatalf("completeness counts = %+v, want 3 of 4 succeeded, 1 failed", comp)
	}
	if comp.Retries != 1 || comp.ExcludedWIDs != 4 {
		t.Fatalf("retries=%d excluded=%d, want 1 retry and 4 excluded wids", comp.Retries, comp.ExcludedWIDs)
	}
	if len(comp.Failures) != 1 {
		t.Fatalf("Failures = %+v, want exactly one entry", comp.Failures)
	}
	f := comp.Failures[0]
	if f.Shard != 3 || f.WIDMin != 13 || f.WIDMax != 16 || f.WIDs != 4 {
		t.Fatalf("failure names shard %d wids %d–%d (%d), want shard 3 wids 13–16 (4)",
			f.Shard, f.WIDMin, f.WIDMax, f.WIDs)
	}
	if f.Attempts != 2 || f.Skipped {
		t.Fatalf("failure attempts=%d skipped=%v, want 2 attempts, not skipped", f.Attempts, f.Skipped)
	}
	if !strings.Contains(f.Cause, "panic") {
		t.Fatalf("failure cause %q does not name the panic", f.Cause)
	}
	if stats.Shards != 4 || stats.ShardsFailed != 1 || stats.ShardRetries != 1 {
		t.Fatalf("stats = %+v, want shards=4 failed=1 retries=1", stats)
	}
	// Exactly one backoff sleep (between the two attempts), at the exact
	// deterministic schedule value: Delay(1, u=0.5) = Base.
	if len(*slept) != 1 || (*slept)[0] != DefaultBackoffBase {
		t.Fatalf("slept %v, want exactly [%v]", *slept, DefaultBackoffBase)
	}
}

// TestShardChaosBudgetSlicePartial trips one shard's budget slice: the
// instances of the top shard are two orders of magnitude heavier, the
// output budget divides evenly across shards, and only the heavy shard
// exhausts its slice. Budget faults are deterministic, so no retry.
func TestShardChaosBudgetSlicePartial(t *testing.T) {
	p := pattern.MustParse("A -> B")
	// wids 1–12 hold 2 A/B pairs (3 sequential incidents each); wids 13–16
	// hold 40 pairs (820 incidents each).
	pairs := append(uniformPairs(12, 2), 40, 40, 40, 40)
	ix := eval.NewIndex(buildLog(t, pairs))
	full, err := eval.New(ix, eval.Options{}).EvalParallelCtx(context.Background(), p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := filterBelow(full, 13)

	cfg, slept := detCfg(4)
	x := NewExecutor(ix, cfg)
	// 400 outputs across 4 shards = 100 per slice: the light shards emit 12
	// each, the heavy shard trips on its first instance (820 > 100).
	opts := eval.Options{Budget: resilience.Budget{MaxOutputs: 400}}
	var stats eval.QueryStats
	got, comp, err := x.Execute(context.Background(), p, opts, &stats)
	if err != nil {
		t.Fatalf("Execute returned error %v; partial results must not be errors", err)
	}
	if !got.Equal(want) {
		t.Fatalf("partial result = %v, want the light shards' incidents %v", got, want)
	}
	if comp.Complete || comp.Succeeded != 3 || comp.Failed != 1 || comp.ExcludedWIDs != 4 {
		t.Fatalf("completeness = %+v, want 3/4 with the heavy shard excluded", comp)
	}
	f := comp.Failures[0]
	if f.WIDMin != 13 || f.WIDMax != 16 {
		t.Fatalf("excluded range %d–%d, want 13–16", f.WIDMin, f.WIDMax)
	}
	if !strings.Contains(f.Cause, "budget") {
		t.Fatalf("failure cause %q does not name the budget", f.Cause)
	}
	// Budget errors are non-retryable: one attempt, no backoff sleeps.
	if f.Attempts != 1 || comp.Retries != 0 || len(*slept) != 0 {
		t.Fatalf("attempts=%d retries=%d slept=%v, want a single attempt and no retries",
			f.Attempts, comp.Retries, *slept)
	}
}

// TestShardChaosBreakerSkipsPoisonedShard drives the full breaker cycle
// across queries on one long-lived executor: fail → open (skipped without
// attempts) → cooldown elapses → half-open probe succeeds → closed.
func TestShardChaosBreakerSkipsPoisonedShard(t *testing.T) {
	clk := installClock(t)
	p := pattern.MustParse("A . B")
	ix := eval.NewIndex(buildLog(t, uniformPairs(16, 3)))

	cfg, _ := detCfg(4)
	cfg.MaxAttempts = 1
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = time.Minute
	x := NewExecutor(ix, cfg)
	if x.OpenBreakers() != 0 {
		t.Fatalf("fresh executor reports %d open breakers", x.OpenBreakers())
	}

	// Query 1: shard 3 panics once; threshold 1 opens its breaker.
	widHook(t, func(wid uint64) bool { return wid >= 13 })
	_, comp, err := x.Execute(context.Background(), p, eval.Options{}, nil)
	if err != nil || comp.Failed != 1 || comp.Skipped != 0 {
		t.Fatalf("query 1: err=%v comp=%+v, want one failed shard", err, comp)
	}
	if x.OpenBreakers() != 1 {
		t.Fatalf("after failure, OpenBreakers = %d, want 1", x.OpenBreakers())
	}

	// Query 2: the breaker is open, so the poisoned shard is skipped with
	// zero attempts — the hook must not even fire for its wids.
	eval.SetEvalHook(func(wid uint64) {
		if wid >= 13 {
			t.Errorf("open breaker let wid %d be evaluated", wid)
		}
	})
	_, comp, err = x.Execute(context.Background(), p, eval.Options{}, nil)
	if err != nil {
		t.Fatalf("query 2: %v", err)
	}
	if comp.Skipped != 1 || comp.Failed != 0 || comp.Attempted != 3 {
		t.Fatalf("query 2 completeness = %+v, want the shard skipped without attempts", comp)
	}
	f := comp.Failures[0]
	if f.Attempts != 0 || !f.Skipped {
		t.Fatalf("query 2 failure = %+v, want attempts=0 skipped=true", f)
	}
	if !strings.Contains(f.Cause, "circuit breaker open") || !strings.Contains(f.Cause, "13–16") {
		t.Fatalf("query 2 cause %q must name the open breaker and the wid range", f.Cause)
	}

	// Query 3: cooldown elapsed and the fault is gone — the half-open probe
	// succeeds and the result is complete again.
	eval.SetEvalHook(nil)
	clk.advance(time.Minute)
	got, comp, err := x.Execute(context.Background(), p, eval.Options{}, nil)
	if err != nil || !comp.Complete {
		t.Fatalf("query 3: err=%v comp=%+v, want recovery to a complete result", err, comp)
	}
	want, _ := eval.New(ix, eval.Options{}).EvalParallelCtx(context.Background(), p, 1, nil)
	if !got.Equal(want) {
		t.Fatal("recovered result differs from the unsharded evaluation")
	}
	if x.OpenBreakers() != 0 {
		t.Fatalf("after recovery, OpenBreakers = %d, want 0", x.OpenBreakers())
	}
}

// TestShardChaosAllShardsLost: when nothing survives there is no partial
// result to return — Execute reports the first shard error.
func TestShardChaosAllShardsLost(t *testing.T) {
	ix := eval.NewIndex(buildLog(t, uniformPairs(8, 2)))
	widHook(t, func(uint64) bool { return true })
	cfg, _ := detCfg(4)
	cfg.MaxAttempts = 1
	x := NewExecutor(ix, cfg)
	set, comp, err := x.Execute(context.Background(), pattern.MustParse("A . B"), eval.Options{}, nil)
	if err == nil || set != nil {
		t.Fatalf("Execute = (%v, %v), want a hard error when zero shards survive", set, err)
	}
	if comp.Succeeded != 0 || comp.Failed != 4 {
		t.Fatalf("completeness = %+v, want all 4 shards failed", comp)
	}
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to a PanicError", err)
	}
}

// TestShardChaosContextCancel: a dead caller context is a query-level
// failure, not a shard fault — no retries, and no breaker trips.
func TestShardChaosContextCancel(t *testing.T) {
	ix := eval.NewIndex(buildLog(t, uniformPairs(16, 3)))
	cfg, slept := detCfg(4)
	x := NewExecutor(ix, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := x.Execute(ctx, pattern.MustParse("A -> B"), eval.Options{}, nil)
	if err != context.Canceled {
		t.Fatalf("Execute on cancelled ctx = %v, want context.Canceled", err)
	}
	if x.OpenBreakers() != 0 {
		t.Fatalf("cancellation tripped %d breakers, want 0", x.OpenBreakers())
	}
	if len(*slept) != 0 {
		t.Fatalf("cancellation caused backoff sleeps %v, want none", *slept)
	}
}
