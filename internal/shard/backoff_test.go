package shard

import (
	"testing"
	"time"
)

// The backoff schedule is pure arithmetic over (attempt, jitter draw), so
// every property — exponential growth, the cap, jitter bounds — is asserted
// exactly, with no sleeping and no sampling.

func TestShardBackoffExponentialGrowth(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Hour, Factor: 2, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond,  // attempt 1
		20 * time.Millisecond,  // attempt 2
		40 * time.Millisecond,  // attempt 3
		80 * time.Millisecond,  // attempt 4
		160 * time.Millisecond, // attempt 5
	}
	for i, w := range want {
		if got := b.Delay(i+1, 0.5); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestShardBackoffCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: -1}
	for attempt := 5; attempt <= 64; attempt++ {
		if got := b.Delay(attempt, 0.5); got != 100*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want the %v cap", attempt, got, b.Max)
		}
	}
	// Huge attempt numbers must not overflow past the cap.
	if got := b.Delay(1<<20, 0.5); got != 100*time.Millisecond {
		t.Fatalf("Delay(1<<20) = %v, want the cap", got)
	}
}

func TestShardBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Hour, Factor: 2, Jitter: 0.2}
	// u=0 is the lower edge (1-Jitter), u→1 the upper (1+Jitter); u=0.5 is
	// the raw delay exactly.
	if got := b.Delay(1, 0); got != 80*time.Millisecond {
		t.Errorf("Delay(1, u=0) = %v, want 80ms", got)
	}
	if got := b.Delay(1, 0.5); got != 100*time.Millisecond {
		t.Errorf("Delay(1, u=0.5) = %v, want 100ms", got)
	}
	if got := b.Delay(1, 0.999999); got >= 120*time.Millisecond || got < 100*time.Millisecond {
		t.Errorf("Delay(1, u→1) = %v, want in [100ms, 120ms)", got)
	}
	// Bounds hold at every attempt, including at the cap.
	for attempt := 1; attempt <= 10; attempt++ {
		for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
			raw := b.Delay(attempt, 0.5)
			got := b.Delay(attempt, u)
			lo := time.Duration(float64(raw) * 0.8)
			hi := time.Duration(float64(raw) * 1.2)
			if got < lo || got > hi {
				t.Fatalf("Delay(%d, %v) = %v outside [%v, %v]", attempt, u, got, lo, hi)
			}
		}
	}
}

func TestShardBackoffDefaults(t *testing.T) {
	var b Backoff
	// Zero config resolves to the documented defaults: 10ms base, 2x
	// growth, 1s cap, ±20% jitter.
	if got := b.Delay(1, 0.5); got != DefaultBackoffBase {
		t.Errorf("zero Backoff Delay(1) = %v, want %v", got, DefaultBackoffBase)
	}
	if got := b.Delay(100, 0.5); got != DefaultBackoffMax {
		t.Errorf("zero Backoff Delay(100) = %v, want the %v cap", got, DefaultBackoffMax)
	}
	if got := b.Delay(1, 0); got != time.Duration(float64(DefaultBackoffBase)*0.8) {
		t.Errorf("zero Backoff Delay(1, u=0) = %v, want base·0.8", got)
	}
	// Factor below 1 degrades to constant delay, never a shrinking one.
	c := Backoff{Base: 50 * time.Millisecond, Factor: 0.1, Jitter: -1}
	if got := c.Delay(5, 0.5); got != 50*time.Millisecond {
		t.Errorf("Factor<1 Delay(5) = %v, want constant 50ms", got)
	}
	// Attempt < 1 is clamped to the first delay.
	if got := b.Delay(0, 0.5); got != DefaultBackoffBase {
		t.Errorf("Delay(0) = %v, want %v", got, DefaultBackoffBase)
	}
}
