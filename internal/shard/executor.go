package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/obs"
	"wlq/internal/resilience"
)

// DefaultMaxAttempts is the per-shard evaluation attempt cap per query
// (1 initial try + retries) when Config.MaxAttempts is zero.
const DefaultMaxAttempts = 3

// Config tunes a sharded executor. The zero value shards into GOMAXPROCS
// contiguous wid ranges with 3 attempts per shard, default backoff, and a
// 5-failure/30s circuit breaker per shard.
type Config struct {
	// Shards is the number of failure domains (0 = GOMAXPROCS; the actual
	// count is capped by the instance count).
	Shards int
	// Policy assigns wids to shards (default PolicyRange).
	Policy Policy
	// MaxAttempts caps evaluation attempts per shard per query, the first
	// try included (0 = DefaultMaxAttempts).
	MaxAttempts int
	// Backoff schedules the delay between a shard's attempts.
	Backoff Backoff
	// BreakerThreshold opens a shard's breaker after this many consecutive
	// failed attempts (0 = DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// ShardTimeout, when positive, deadlines each shard attempt
	// independently of the query context's deadline.
	ShardTimeout time.Duration
	// Sleep waits between attempts (nil = time.Sleep). Tests inject a
	// recording no-op so backoff is asserted, not waited for.
	Sleep func(time.Duration)
	// Rand draws the jitter uniform in [0,1) (nil = math/rand.Float64).
	Rand func() float64
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return c
}

// ShardOutcome describes one shard excluded from a query's result: which
// wids are missing, how hard the executor tried, and why it gave up.
type ShardOutcome struct {
	// Shard is the shard id.
	Shard int `json:"shard"`
	// WIDMin/WIDMax bound the excluded wids; under PolicyRange the whole
	// interval is excluded, under PolicyHash it is the envelope of the
	// scattered members.
	WIDMin uint64 `json:"wid_min"`
	WIDMax uint64 `json:"wid_max"`
	// WIDs is the number of workflow instances excluded.
	WIDs int `json:"wids"`
	// Attempts is how many evaluation attempts were made (0 when the
	// circuit breaker skipped the shard outright).
	Attempts int `json:"attempts"`
	// Cause is the final error in human-readable form.
	Cause string `json:"cause"`
	// Skipped is true when an open circuit breaker excluded the shard
	// without any attempt this query.
	Skipped bool `json:"skipped,omitempty"`
	// Worker names the remote node that owned the shard, for distributed
	// execution (internal/cluster); empty for in-process shards.
	Worker string `json:"worker,omitempty"`
	// Ranges lists the exact excluded wid runs when the excluded set is
	// scattered (hash placement) and the envelope alone would overstate the
	// loss. Empty when WIDMin–WIDMax already is the exact interval.
	Ranges []WIDRange `json:"wid_ranges,omitempty"`
}

// WIDRange is one contiguous run of workflow instance ids, inclusive.
type WIDRange struct {
	Min uint64 `json:"min"`
	Max uint64 `json:"max"`
}

// MaxOutcomeRanges caps ShardOutcome.Ranges: past this many runs the exact
// enumeration stops paying for itself in a completeness document, and the
// envelope plus the wid count carries the information.
const MaxOutcomeRanges = 64

// RangesOf run-length-encodes an ascending wid slice into inclusive ranges.
// It returns nil when the encoding would exceed MaxOutcomeRanges runs (the
// caller falls back to the min/max envelope) or when the slice is a single
// contiguous run already described by the envelope.
func RangesOf(wids []uint64) []WIDRange {
	if len(wids) == 0 {
		return nil
	}
	ranges := []WIDRange{{Min: wids[0], Max: wids[0]}}
	for _, wid := range wids[1:] {
		last := &ranges[len(ranges)-1]
		if wid == last.Max+1 {
			last.Max = wid
			continue
		}
		if len(ranges) == MaxOutcomeRanges {
			return nil
		}
		ranges = append(ranges, WIDRange{Min: wid, Max: wid})
	}
	if len(ranges) == 1 {
		return nil // the envelope is already exact
	}
	return ranges
}

// Completeness is the partial-result contract: exactly which slices of the
// log a merged incident set covers. A Complete result is byte-identical to
// the unsharded evaluator's; an incomplete one names every excluded wid
// range and its cause, so "no incidents in wids 40–60" is distinguishable
// from "wids 40–60 were never evaluated".
type Completeness struct {
	// Complete is true when every shard succeeded.
	Complete bool `json:"complete"`
	// Shards is the number of failure domains the log partitioned into.
	Shards int `json:"shards"`
	// Attempted counts shards on which at least one attempt ran.
	Attempted int `json:"shards_attempted"`
	// Succeeded counts shards whose incidents are in the merged result.
	Succeeded int `json:"shards_succeeded"`
	// Failed counts shards excluded after exhausting their attempts.
	Failed int `json:"shards_failed"`
	// Skipped counts shards excluded by an open circuit breaker.
	Skipped int `json:"shards_skipped"`
	// Retries counts re-attempts across all shards.
	Retries int `json:"retries"`
	// ExcludedWIDs is the total number of workflow instances not covered
	// by the result.
	ExcludedWIDs int `json:"excluded_wids"`
	// Failures details every excluded shard, ascending by shard id.
	Failures []ShardOutcome `json:"failures,omitempty"`
}

// Executor runs queries shard by shard over one immutable log backend
// (row index or columnar store). It is
// safe for concurrent use and meant to be long-lived: the per-shard
// circuit breakers accumulate failure history across queries, which is
// what lets a persistently poisoned shard be skipped instead of re-probed
// by every request.
type Executor struct {
	src      eval.Source
	cfg      Config
	shards   []Shard
	breakers []*Breaker
}

// NewExecutor partitions the backend's instances and creates the per-shard
// breakers. The backend must be immutable for the executor's lifetime (the
// same contract EvalParallel relies on).
func NewExecutor(src eval.Source, cfg Config) *Executor {
	cfg = cfg.withDefaults()
	shards := Partition(src.WIDs(), cfg.Shards, cfg.Policy)
	breakers := make([]*Breaker, len(shards))
	for i := range breakers {
		breakers[i] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	return &Executor{src: src, cfg: cfg, shards: shards, breakers: breakers}
}

// Shards returns the partition (callers must not modify it).
func (x *Executor) Shards() []Shard { return x.shards }

// OpenBreakers counts shards whose breaker is not closed — the live
// "poisoned shards" gauge exported at /metrics.
func (x *Executor) OpenBreakers() int {
	open := 0
	for _, b := range x.breakers {
		if b.State() != BreakerClosed {
			open++
		}
	}
	return open
}

// Retryable classifies an attempt error: panics (genuine bugs, or injected
// faults surfacing through the eval hook seam) are transient and worth a
// backed-off retry; budget errors are deterministic — the same work would
// trip the same slice again — and context errors mean the caller is gone.
func Retryable(err error) bool {
	var pe *resilience.PanicError
	return errors.As(err, &pe)
}

// sliceBudget divides the query budget across n shards; the arithmetic
// lives on resilience.Budget so the cluster coordinator shares it.
func sliceBudget(b resilience.Budget, n int) resilience.Budget {
	return b.Slice(n)
}

// shardResult is one shard's terminal outcome within a query.
type shardResult struct {
	set      *incident.Set
	stats    eval.QueryStats
	attempts int
	retries  int
	err      error // nil on success
	skipped  bool  // breaker refused; no attempt ran
}

// Execute evaluates p across all shards concurrently, each in its own
// failure domain, and merges the surviving shards' incidents.
//
// opts configures the underlying evaluation exactly as eval.New, except
// that opts.Budget is sliced per shard (work dimensions divided evenly;
// wall time shared). A non-nil opts.Meter aggregates across shards — the
// node counters are atomic.
//
// The returned error is non-nil only when the whole query is lost: the
// context was cancelled, or no shard produced a result. Otherwise Execute
// returns the merged set with a Completeness describing coverage; callers
// choose whether an incomplete result is an answer (degraded mode) or an
// error (strict mode). With no faults the merged set equals the unsharded
// evaluator's output exactly.
func (x *Executor) Execute(ctx context.Context, p pattern.Node, opts eval.Options, stats *eval.QueryStats) (*incident.Set, *Completeness, error) {
	comp := &Completeness{Shards: len(x.shards)}
	if len(x.shards) == 0 {
		comp.Complete = true
		if stats != nil {
			stats.Workers = 1
		}
		return &incident.Set{}, comp, nil
	}

	opts.Budget = sliceBudget(opts.Budget, len(x.shards))
	tr := obs.FromContext(ctx)
	results := make([]shardResult, len(x.shards))
	var wg sync.WaitGroup
	for i := range x.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = x.runShard(ctx, tr, p, opts, i)
		}(i)
	}
	wg.Wait()

	// Fold outcomes into the completeness contract and the merged set.
	var (
		merged   []incident.Incident
		firstErr error
	)
	for i, r := range results {
		comp.Retries += r.retries
		switch {
		case r.skipped:
			comp.Skipped++
			comp.ExcludedWIDs += len(x.shards[i].WIDs)
			comp.Failures = append(comp.Failures, x.outcome(i, r))
		case r.err != nil:
			comp.Attempted++
			comp.Failed++
			comp.ExcludedWIDs += len(x.shards[i].WIDs)
			comp.Failures = append(comp.Failures, x.outcome(i, r))
			if firstErr == nil {
				firstErr = r.err
			}
		default:
			comp.Attempted++
			comp.Succeeded++
			merged = append(merged, r.set.Incidents()...)
			if stats != nil {
				stats.Instances += r.stats.Instances
				stats.Incidents += r.stats.Incidents
			}
		}
	}
	comp.Complete = comp.Succeeded == comp.Shards
	if stats != nil {
		stats.Workers = len(x.shards)
		stats.Shards = len(x.shards)
		stats.ShardsFailed = comp.Failed + comp.Skipped
		stats.ShardRetries = comp.Retries
	}

	if err := ctx.Err(); err != nil {
		return nil, comp, err
	}
	if comp.Succeeded == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("all %d shards skipped by open circuit breakers", comp.Shards)
		}
		return nil, comp, firstErr
	}
	// Under PolicyRange the shard ranges are disjoint and ascending and each
	// shard's set is canonical, so the concatenation is already sorted;
	// NewSet's normalize pass is then a cheap verification. Under PolicyHash
	// it performs the real merge.
	return incident.NewSet(merged...), comp, nil
}

// runShard drives one shard through breaker admission and the retry loop.
func (x *Executor) runShard(ctx context.Context, tr *obs.Trace, p pattern.Node, opts eval.Options, i int) shardResult {
	sh := x.shards[i]
	br := x.breakers[i]
	if !br.Allow() {
		return shardResult{
			skipped: true,
			err:     fmt.Errorf("circuit breaker open for shard %d (%s)", sh.ID, sh.RangeString()),
		}
	}
	ev := eval.New(x.src, opts)
	var res shardResult
	for attempt := 1; ; attempt++ {
		res.attempts = attempt
		sp := tr.StartSpan(fmt.Sprintf("shard %d attempt %d", sh.ID, attempt))
		sp.SetAttr("wid_min", sh.MinWID)
		sp.SetAttr("wid_max", sh.MaxWID)
		sp.SetAttr("wids", len(sh.WIDs))

		actx := ctx
		cancel := func() {}
		if x.cfg.ShardTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, x.cfg.ShardTimeout)
		}
		var st eval.QueryStats
		set, err := ev.EvalWIDsCtx(actx, p, sh.WIDs, &st)
		cancel()

		if err == nil {
			sp.SetAttr("incidents", st.Incidents)
			sp.End()
			br.Success()
			res.set, res.stats, res.err = set, st, nil
			return res
		}
		sp.SetAttr("error", err.Error())
		sp.End()
		res.err = err
		// The parent context dying is not a shard fault: don't trip the
		// breaker for it, and don't retry into a cancelled query.
		if ctx.Err() != nil {
			return res
		}
		br.Failure()
		if !Retryable(err) || attempt >= x.cfg.MaxAttempts || !br.Allow() {
			return res
		}
		res.retries++
		x.cfg.Sleep(x.cfg.Backoff.Delay(attempt, x.cfg.Rand()))
	}
}

// outcome renders one excluded shard's ShardOutcome.
func (x *Executor) outcome(i int, r shardResult) ShardOutcome {
	sh := x.shards[i]
	return ShardOutcome{
		Shard:    sh.ID,
		WIDMin:   sh.MinWID,
		WIDMax:   sh.MaxWID,
		WIDs:     len(sh.WIDs),
		Attempts: r.attempts,
		Cause:    r.err.Error(),
		Skipped:  r.skipped,
	}
}
