package shard

import (
	"sync"
	"time"

	"wlq/internal/resilience"
)

// Breaker defaults, used by NewBreaker for zero arguments.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 30 * time.Second
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states, in the classic closed → open → half-open cycle.
const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe is in flight; its outcome decides whether
	// the breaker closes again or re-opens for another cooldown.
	BreakerHalfOpen
)

// String names the state as exported in metrics and completeness causes.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a per-shard circuit breaker: after threshold consecutive
// failures it opens and refuses work, so a persistently poisoned shard is
// skipped (and reported in Completeness) instead of retried forever; after
// the cooldown one half-open probe is admitted, and its outcome either
// closes the breaker or re-opens it for another cooldown.
//
// The breaker reads time through resilience.Now, so open → half-open
// transitions are deterministic under the test clock seam. All methods are
// safe for concurrent use: breakers outlive single queries (the executor
// keeps one per shard across calls), so concurrent queries share them.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
}

// NewBreaker creates a closed breaker opening after threshold consecutive
// failures (<= 0 = DefaultBreakerThreshold) and probing again after
// cooldown (<= 0 = DefaultBreakerCooldown).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may proceed. While open it returns false
// until the cooldown elapses; the first Allow after that transitions to
// half-open and admits exactly one probe (further Allows are refused until
// the probe reports Success or Failure).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if resilience.Now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // BreakerHalfOpen: the probe is already out
		return false
	}
}

// Success reports a completed request, closing the breaker and resetting
// the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
}

// Failure reports a failed request. The threshold'th consecutive failure
// opens the breaker; a failed half-open probe re-opens it immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	}
}

// open transitions to BreakerOpen; callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.failures = 0
	b.openedAt = resilience.Now()
}

// State returns the breaker's current position without advancing it (an
// elapsed cooldown still reads as open until an Allow probes).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
