// Package shard partitions a workflow log's instances into wid shards and
// evaluates incident-pattern queries shard by shard, each shard in its own
// failure domain.
//
// The decomposition is exact, not approximate: Definition 4 makes incident
// semantics strictly per-instance — an incident's wid is a single workflow
// id — so a log partitioned by wid evaluates with zero cross-shard joins
// and the merged result is byte-identical to the unsharded evaluator's
// (the same property MapReduce-style log analysis and partitioned-stream
// recovery exploit). What sharding buys on top of parallelism is blast-
// radius control: a panic, budget trip or pathological instance in one
// slice of the log degrades that slice only, and the query still answers
// from the surviving N−1 shards, with Completeness metadata naming exactly
// which wid ranges are missing and why.
//
// The failure-domain machinery per shard:
//
//   - a budget slice split from the query budget (work dimensions divided
//     across shards; wall time shared, since shards run concurrently);
//   - panic isolation reusing the eval worker boundary, so one poisoned
//     instance fails one shard, not the process;
//   - a per-shard deadline, retry with capped exponential backoff and
//     jitter for retryable faults, and a circuit breaker that stops
//     retrying a persistently poisoned shard.
//
// Everything time-dependent rides the resilience clock seam and the
// Config.Sleep/Config.Rand seams, so backoff and breaker transitions are
// deterministically testable without sleeping.
package shard

import (
	"fmt"
	"runtime"
)

// Policy selects how wids are assigned to shards.
type Policy int

// Partitioning policies.
const (
	// PolicyRange assigns contiguous wid ranges to shards (the default).
	// Range shards keep the global incident order: concatenating shard
	// results in shard order is already canonical, and a failed shard
	// excludes one describable wid interval.
	PolicyRange Policy = iota
	// PolicyHash assigns wids by hash, spreading hot instances across
	// shards at the cost of interleaved ranges (the merged result is
	// re-normalized, and an excluded "range" is a scattered set reported
	// by its min/max envelope).
	PolicyHash
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRange:
		return "range"
	case PolicyHash:
		return "hash"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy resolves a policy name as accepted by CLI flags.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "range":
		return PolicyRange, nil
	case "hash":
		return PolicyHash, nil
	default:
		return 0, fmt.Errorf("unknown shard policy %q (want range or hash)", name)
	}
}

// Shard is one partition of a log's workflow instances.
type Shard struct {
	// ID is the shard's index, 0-based.
	ID int
	// WIDs are the member instance ids, ascending.
	WIDs []uint64
	// MinWID and MaxWID bound the members. Under PolicyRange the shard
	// owns the whole interval; under PolicyHash the interval is only an
	// envelope around the scattered members.
	MinWID, MaxWID uint64
}

// RangeString renders the shard's wid coverage for error causes and logs.
func (s Shard) RangeString() string {
	if len(s.WIDs) == 0 {
		return "∅"
	}
	if s.MinWID == s.MaxWID {
		return fmt.Sprintf("wid %d", s.MinWID)
	}
	return fmt.Sprintf("wids %d–%d", s.MinWID, s.MaxWID)
}

// hashWID is FNV-1a over the wid's little-endian bytes. Deliberately not
// maphash: the partition must be stable across processes, so operators can
// correlate a shard id (and its excluded wids) across restarts and replicas.
func hashWID(wid uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= wid >> (8 * i) & 0xff
		h *= prime64
	}
	return h
}

// Partition splits wids into at most n shards under the policy; n <= 0
// means GOMAXPROCS. Empty shards are dropped, so the result may have fewer
// than n entries (never more); each returned shard's WIDs are ascending.
// The input slice is not modified and must be ascending (eval.Index.WIDs
// guarantees it).
func Partition(wids []uint64, n int, policy Policy) []Shard {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(wids) {
		n = len(wids)
	}
	if n == 0 {
		return nil
	}
	buckets := make([][]uint64, n)
	switch policy {
	case PolicyHash:
		for _, wid := range wids {
			i := int(hashWID(wid) % uint64(n))
			buckets[i] = append(buckets[i], wid)
		}
	default: // PolicyRange
		chunk := (len(wids) + n - 1) / n
		for i := 0; i < n; i++ {
			lo := i * chunk
			if lo >= len(wids) {
				break
			}
			hi := lo + chunk
			if hi > len(wids) {
				hi = len(wids)
			}
			buckets[i] = wids[lo:hi:hi]
		}
	}
	shards := make([]Shard, 0, n)
	for _, b := range buckets {
		if len(b) == 0 {
			continue
		}
		shards = append(shards, Shard{
			ID:     len(shards),
			WIDs:   b,
			MinWID: b[0],
			MaxWID: b[len(b)-1],
		})
	}
	return shards
}
