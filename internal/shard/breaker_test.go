package shard

import (
	"testing"
	"time"

	"wlq/internal/resilience"
)

// manualClock drives resilience.Now deterministically; the breaker's
// open → half-open transition is pure arithmetic over it.
type manualClock struct {
	t time.Time
}

func (c *manualClock) now() time.Time          { return c.t }
func (c *manualClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func installClock(t *testing.T) *manualClock {
	t.Helper()
	c := &manualClock{t: time.Unix(1_700_000_000, 0)}
	resilience.SetClock(c.now)
	t.Cleanup(func() { resilience.SetClock(nil) })
	return c
}

func TestShardBreakerOpensAtThreshold(t *testing.T) {
	installClock(t)
	b := NewBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		b.Failure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
		if !b.Allow() {
			t.Fatalf("closed breaker refused a request after %d failures", i+1)
		}
	}
	b.Failure() // third consecutive failure trips it
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures state = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before the cooldown")
	}
}

func TestShardBreakerSuccessResetsCount(t *testing.T) {
	installClock(t)
	b := NewBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success() // interleaved success: the count is consecutive, not total
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (failures were not consecutive)", got)
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open after 3 consecutive failures", got)
	}
}

func TestShardBreakerHalfOpenTiming(t *testing.T) {
	clk := installClock(t)
	b := NewBreaker(1, time.Minute)
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}

	// One tick short of the cooldown: still refusing.
	clk.advance(time.Minute - time.Nanosecond)
	if b.Allow() {
		t.Fatal("breaker admitted a probe before the cooldown elapsed")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want still open before cooldown", got)
	}

	// Exactly at the cooldown boundary: one probe is admitted, and only one.
	clk.advance(time.Nanosecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after the cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open while the probe is out", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second request alongside the probe")
	}

	// A successful probe closes the breaker.
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
}

func TestShardBreakerFailedProbeReopens(t *testing.T) {
	clk := installClock(t)
	b := NewBreaker(1, time.Minute)
	b.Failure()
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	b.Failure() // probe failed: re-open for a fresh cooldown from now
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The cooldown restarts at the re-open, not the original open.
	clk.advance(time.Minute - time.Second)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a probe before its fresh cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker refused a probe after its fresh cooldown")
	}
}

func TestShardBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := state.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", state, got, want)
		}
	}
}
