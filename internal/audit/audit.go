// Package audit constructs compliance queries from business principles —
// the application the paper's conclusion singles out ("constructing queries
// from business principles", Section 6). Given a *reference* workflow model
// (the process as it should run), the package derives, from the model's
// exact ordering relations, incident-pattern queries that must be empty on
// every conforming log:
//
//   - a ≺ b where the reference language never runs b after a
//     ("ordering violation"), and
//   - a ⊙ b where b may follow a eventually but never immediately
//     ("adjacency violation": an intermediate step was skipped).
//
// Running the derived queries over an observed log then localizes
// deviations to concrete incidents — ad hoc queries, generated rather than
// hand-written.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
	"wlq/internal/workflow"
)

// Rule is one derived compliance query.
type Rule struct {
	// Query is the incident pattern that must have no incidents on a
	// conforming log.
	Query string
	// Principle states the business rule the query enforces.
	Principle string
}

// RulesFromModel derives the compliance rule set from a reference model.
// Activities absent from the model are not covered (a log may mention
// activities the reference knows nothing about; Check reports those
// separately).
func RulesFromModel(m *workflow.Model) ([]Rule, error) {
	rel, err := workflow.ComputeRelations(m)
	if err != nil {
		return nil, err
	}
	var rules []Rule
	for _, a := range rel.Alphabet {
		for _, b := range rel.Alphabet {
			switch {
			case !rel.EventuallyFollows(a, b):
				rules = append(rules, Rule{
					Query:     quoteActivity(a) + " -> " + quoteActivity(b),
					Principle: fmt.Sprintf("%s never precedes %s", a, b),
				})
			case !rel.DirectlyFollows(a, b):
				rules = append(rules, Rule{
					Query:     quoteActivity(a) + " . " + quoteActivity(b),
					Principle: fmt.Sprintf("%s is never immediately followed by %s", a, b),
				})
			}
		}
	}
	return rules, nil
}

// quoteActivity renders an activity name as a pattern atom (quoted when it
// is not a bare identifier).
func quoteActivity(name string) string {
	return pattern.NewAtom(name).String()
}

// Violation is one rule with the incidents that break it.
type Violation struct {
	Rule Rule
	// Instances are the offending workflow instance ids, ascending.
	Instances []uint64
	// Incidents is the total number of offending incidents.
	Incidents int
}

// Report is the outcome of auditing one log against a rule set.
type Report struct {
	// RulesChecked is the number of derived rules evaluated.
	RulesChecked int
	// Violations lists broken rules, most offending instances first.
	Violations []Violation
	// UnknownActivities are activity names in the log that the reference
	// model does not contain (START/END excluded) — deviations by
	// definition, but not localizable by ordering rules.
	UnknownActivities []string
}

// Clean reports whether the audit found nothing.
func (r *Report) Clean() bool {
	return len(r.Violations) == 0 && len(r.UnknownActivities) == 0
}

// String renders the report for CLIs.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d rule(s) checked, %d violated\n", r.RulesChecked, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "  VIOLATION %-30s %3d incident(s) in %d instance(s): %s\n",
			v.Rule.Query, v.Incidents, len(v.Instances), v.Rule.Principle)
	}
	if len(r.UnknownActivities) > 0 {
		fmt.Fprintf(&sb, "  activities unknown to the reference model: %s\n",
			strings.Join(r.UnknownActivities, ", "))
	}
	if r.Clean() {
		sb.WriteString("  log conforms to every derived rule\n")
	}
	return sb.String()
}

// Check audits a log against a reference model: derive the rules, evaluate
// each, and collect violations.
func Check(l *wlog.Log, reference *workflow.Model) (*Report, error) {
	rules, err := RulesFromModel(reference)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool)
	for _, a := range reference.Activities() {
		known[a] = true
	}

	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})
	report := &Report{RulesChecked: len(rules)}

	for _, rule := range rules {
		p, err := pattern.Parse(rule.Query)
		if err != nil {
			return nil, fmt.Errorf("audit: derived rule %q: %w", rule.Query, err)
		}
		set := e.Eval(p)
		if set.Len() == 0 {
			continue
		}
		report.Violations = append(report.Violations, Violation{
			Rule:      rule,
			Instances: set.WIDs(),
			Incidents: set.Len(),
		})
	}
	sort.Slice(report.Violations, func(i, j int) bool {
		a, b := report.Violations[i], report.Violations[j]
		if len(a.Instances) != len(b.Instances) {
			return len(a.Instances) > len(b.Instances)
		}
		return a.Rule.Query < b.Rule.Query
	})

	for _, act := range l.Activities() {
		if act == wlog.ActivityStart || act == wlog.ActivityEnd {
			continue
		}
		if !known[act] {
			report.UnknownActivities = append(report.UnknownActivities, act)
		}
	}
	sort.Strings(report.UnknownActivities)
	return report, nil
}
