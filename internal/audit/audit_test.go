package audit

import (
	"strings"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/models"
	"wlq/internal/workflow"
)

func TestRulesFromSimpleModel(t *testing.T) {
	m := &workflow.Model{Name: "seq", Root: workflow.Sequence{
		workflow.Task{Name: "A"}, workflow.Task{Name: "B"},
	}}
	rules, err := RulesFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs over {A,B}: (A,A) no EF → rule; (A,B) DF → none; (B,A) no EF →
	// rule; (B,B) no EF → rule. Exactly three rules.
	if len(rules) != 3 {
		t.Fatalf("rules = %v", rules)
	}
	queries := map[string]bool{}
	for _, r := range rules {
		queries[r.Query] = true
		if r.Principle == "" {
			t.Errorf("rule %q lacks a principle", r.Query)
		}
	}
	for _, want := range []string{"A -> A", "B -> A", "B -> B"} {
		if !queries[want] {
			t.Errorf("missing rule %q in %v", want, queries)
		}
	}
}

func TestRulesQuoteOddActivityNames(t *testing.T) {
	m := &workflow.Model{Name: "odd", Root: workflow.Sequence{
		workflow.Task{Name: "two words"}, workflow.Task{Name: "B"},
	}}
	rules, err := RulesFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if _, err := pattern.Parse(r.Query); err != nil {
			t.Errorf("derived rule %q does not parse: %v", r.Query, err)
		}
	}
}

// TestCleanLogsPassTheirReferenceAudit: logs enacted from the reference
// model itself violate none of the rules derived from it.
func TestCleanLogsPassTheirReferenceAudit(t *testing.T) {
	for name, c := range models.All() {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			clean := models.Catalog{Model: c.Reference}
			l, err := clean.Generate(400, 15)
			if err != nil {
				t.Fatal(err)
			}
			report, err := Check(l, c.Reference)
			if err != nil {
				t.Fatal(err)
			}
			if !report.Clean() {
				t.Errorf("clean log flagged:\n%s", report)
			}
			if report.RulesChecked == 0 {
				t.Error("no rules derived")
			}
		})
	}
}

// TestBuggyLogsFailTheirReferenceAudit: logs from the planted model violate
// the reference-derived rules, and the flagged instances cover exactly the
// instances the catalog's hand-written anomaly queries flag.
func TestBuggyLogsFailTheirReferenceAudit(t *testing.T) {
	for name, c := range models.All() {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			l, err := c.Generate(1500, 29)
			if err != nil {
				t.Fatal(err)
			}
			report, err := Check(l, c.Reference)
			if err != nil {
				t.Fatal(err)
			}
			if len(report.Violations) == 0 {
				t.Fatalf("planted log passed the audit:\n%s", report)
			}
			if len(report.UnknownActivities) != 0 {
				t.Errorf("plants add no new activities, yet: %v", report.UnknownActivities)
			}

			flagged := map[uint64]bool{}
			for _, v := range report.Violations {
				for _, wid := range v.Instances {
					flagged[wid] = true
				}
			}
			ix := eval.NewIndex(l)
			e := eval.New(ix, eval.Options{})
			planted := map[uint64]bool{}
			for _, a := range c.Anomalies {
				for _, inc := range e.Eval(pattern.MustParse(a.Query)).Incidents() {
					planted[inc.WID()] = true
				}
			}
			// Every hand-flagged instance must be caught by the derived
			// rules (the generated audit subsumes the hand-written queries).
			for wid := range planted {
				if !flagged[wid] {
					t.Errorf("instance %d caught by hand-written query but not by derived rules", wid)
				}
			}
			if len(planted) == 0 {
				t.Error("no planted instances to compare against")
			}
		})
	}
}

func TestReportString(t *testing.T) {
	c := models.Orders()
	l, err := c.Generate(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Check(l, c.Reference)
	if err != nil {
		t.Fatal(err)
	}
	s := report.String()
	if !strings.Contains(s, "VIOLATION") || !strings.Contains(s, "rule(s) checked") {
		t.Errorf("report:\n%s", s)
	}
}

func TestCheckUnknownActivities(t *testing.T) {
	// Audit the clinic-shaped log against the orders reference: everything
	// is unknown.
	c := models.Orders()
	other := models.Loans()
	l, err := other.Generate(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Check(l, c.Reference)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.UnknownActivities) == 0 {
		t.Error("loans activities not reported as unknown to the orders model")
	}
	if report.Clean() {
		t.Error("cross-model audit reported clean")
	}
}

func TestCheckInvalidReference(t *testing.T) {
	bad := &workflow.Model{Name: "bad", Root: workflow.Sequence{}}
	c := models.Orders()
	l, err := c.Generate(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(l, bad); err == nil {
		t.Error("invalid reference accepted")
	}
}
