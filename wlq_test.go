package wlq_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"wlq"
)

func TestEngineOnFig3(t *testing.T) {
	e := wlq.NewEngine(wlq.ClinicFig3())

	set, err := e.Query("UpdateRefer -> GetReimburse")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("incidents = %s, want exactly one", set)
	}
	inc := set.At(0)
	if inc.WID() != 2 || inc.First() != 5 || inc.Last() != 9 {
		t.Errorf("incident = %v, want wid 2 records {5,9}", inc)
	}

	recs := e.IncidentRecords(inc)
	if len(recs) != 2 || recs[0].LSN != 14 || recs[1].LSN != 20 {
		t.Errorf("records = %v, want l14 and l20", recs)
	}
}

func TestEngineQueryError(t *testing.T) {
	e := wlq.NewEngine(wlq.ClinicFig3())
	if _, err := e.Query("A -> "); err == nil {
		t.Error("Query with syntax error: want error")
	}
	if _, err := e.Exists("A -> "); err == nil {
		t.Error("Exists with syntax error: want error")
	}
	if _, err := e.Count("A -> "); err == nil {
		t.Error("Count with syntax error: want error")
	}
	if _, err := e.GroupByAttr("(", "x"); err == nil {
		t.Error("GroupByAttr with syntax error: want error")
	}
	if _, err := e.DistinctInstances(")"); err == nil {
		t.Error("DistinctInstances with syntax error: want error")
	}
	if _, err := e.Explain("|A"); err == nil {
		t.Error("Explain with syntax error: want error")
	}
}

func TestEngineExistsCount(t *testing.T) {
	e := wlq.NewEngine(wlq.ClinicFig3())
	ok, err := e.Exists("SeeDoctor . PayTreatment")
	if err != nil || !ok {
		t.Errorf("Exists = %v, %v", ok, err)
	}
	ok, err = e.Exists("GetReimburse -> GetRefer")
	if err != nil || ok {
		t.Errorf("Exists(reversed) = %v, %v", ok, err)
	}
	n, err := e.Count("SeeDoctor")
	if err != nil || n != 4 {
		t.Errorf("Count(SeeDoctor) = %d, %v; want 4", n, err)
	}
}

func TestEngineOptionsEquivalent(t *testing.T) {
	log, err := wlq.ClinicLog(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"GetRefer . CheckIn",
		"(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)",
		"UpdateRefer & TakeTreatment",
		"GetReimburse -> UpdateRefer",
	}
	def := wlq.NewEngine(log)
	naive := wlq.NewEngine(log, wlq.WithStrategy(wlq.StrategyNaive))
	noOpt := wlq.NewEngine(log, wlq.WithoutOptimizer())
	for _, q := range queries {
		a, err := def.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := naive.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		c, err := noOpt.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) || !a.Equal(c) {
			t.Errorf("engines disagree on %q", q)
		}
	}
}

func TestEngineLimit(t *testing.T) {
	log, err := wlq.ClinicLog(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := wlq.NewEngine(log, wlq.WithLimit(3))
	set, err := e.Query("!X & !Y")
	if err != nil {
		t.Fatal(err)
	}
	// Limit is per operator per instance; the global set may hold up to
	// 3 × instances. It must be well below the unlimited count.
	unlimited, err := wlq.NewEngine(log).Query("!X & !Y")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() >= unlimited.Len() {
		t.Errorf("limit had no effect: %d vs %d", set.Len(), unlimited.Len())
	}
}

func TestEngineGroupBy(t *testing.T) {
	log, err := wlq.ClinicLog(150, 9)
	if err != nil {
		t.Fatal(err)
	}
	e := wlq.NewEngine(log)

	byYear, err := e.GroupByAttr("GetRefer[balance>5000]", "year")
	if err != nil {
		t.Fatal(err)
	}
	if byYear.Total() == 0 {
		t.Error("no high-balance referrals found in 150 instances")
	}
	for _, k := range byYear.Keys() {
		if len(k) != 4 || !strings.HasPrefix(k, "201") {
			t.Errorf("unexpected year key %q", k)
		}
	}

	byHospital, err := e.GroupByInstanceAttr("GetReimburse -> UpdateRefer", "hospital")
	if err != nil {
		t.Fatal(err)
	}
	anomalies, err := e.Count("GetReimburse -> UpdateRefer")
	if err != nil {
		t.Fatal(err)
	}
	if byHospital.Total() != anomalies {
		t.Errorf("hospital grouping total %d != anomaly count %d", byHospital.Total(), anomalies)
	}

	students, err := e.DistinctInstances("GetRefer")
	if err != nil {
		t.Fatal(err)
	}
	if students != 150 {
		t.Errorf("DistinctInstances(GetRefer) = %d, want 150", students)
	}
}

func TestEngineExplain(t *testing.T) {
	e := wlq.NewEngine(wlq.ClinicFig3())
	out, err := e.Explain("(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"incident tree", "sequential", "optimized:", "estimated cost", "≺"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	plain, err := wlq.NewEngine(wlq.ClinicFig3(), wlq.WithoutOptimizer()).Explain("SeeDoctor")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain, "optimizer off") {
		t.Errorf("Explain without optimizer: %s", plain)
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	log, err := wlq.ClinicLog(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "clinic.jsonl")
	if err := wlq.SaveLog(path, log); err != nil {
		t.Fatal(err)
	}
	back, err := wlq.LoadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Equal(back) {
		t.Error("round trip mismatch")
	}
}

func TestBuildLogThroughFacade(t *testing.T) {
	var b wlq.Builder
	w := b.Start()
	if err := b.Emit(w, "Ship", wlq.Attrs("order", "o-1"), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.End(w); err != nil {
		t.Fatal(err)
	}
	log, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := wlq.NewEngine(log)
	n, err := e.Count("Ship")
	if err != nil || n != 1 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestParsePatternAndTree(t *testing.T) {
	p, err := wlq.ParsePattern("A -> (B & C)")
	if err != nil {
		t.Fatal(err)
	}
	tree := wlq.PatternTree(p)
	if !strings.Contains(tree, "parallel") || !strings.Contains(tree, "sequential") {
		t.Errorf("PatternTree = %s", tree)
	}
	if _, err := wlq.ParsePattern("->"); err == nil {
		t.Error("ParsePattern on junk: want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParsePattern on junk should panic")
		}
	}()
	wlq.MustParsePattern("->")
}

func TestNewLogValidates(t *testing.T) {
	if _, err := wlq.NewLog([]wlq.Record{{LSN: 1, WID: 1, Seq: 1, Activity: "NotStart"}}); err == nil {
		t.Error("NewLog on invalid records: want error")
	}
}

func TestBindIncident(t *testing.T) {
	e := wlq.NewEngine(wlq.ClinicFig3())
	set, err := e.Query("SeeDoctor -> (UpdateRefer -> GetReimburse)")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("set = %s", set)
	}
	bindings, err := e.BindIncident("SeeDoctor -> (UpdateRefer -> GetReimburse)", set.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 3 {
		t.Fatalf("bindings = %v", bindings)
	}
	want := []struct {
		atom string
		seq  uint64
	}{{"SeeDoctor", 4}, {"UpdateRefer", 5}, {"GetReimburse", 9}}
	for i, w := range want {
		if bindings[i].Atom != w.atom || bindings[i].Seq != w.seq || bindings[i].Index != i {
			t.Errorf("binding %d = %+v, want %v@%d", i, bindings[i], w.atom, w.seq)
		}
	}

	// Choice queries bind only the taken branch.
	set2, err := e.Query("CompleteRefer | TakeTreatment")
	if err != nil {
		t.Fatal(err)
	}
	for _, inc := range set2.Incidents() {
		bs, err := e.BindIncident("CompleteRefer | TakeTreatment", inc)
		if err != nil {
			t.Fatal(err)
		}
		if len(bs) != 1 {
			t.Errorf("choice bindings = %v", bs)
		}
	}

	// Errors: bad query; non-incident.
	if _, err := e.BindIncident("(", set.At(0)); err == nil {
		t.Error("BindIncident with bad query: want error")
	}
	if _, err := e.BindIncident("GetRefer", set.At(0)); err == nil {
		t.Error("BindIncident with non-incident: want error")
	}
}

func TestInstancesMatchingAndWithout(t *testing.T) {
	log, err := wlq.ClinicLog(300, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := wlq.NewEngine(log)

	matching, err := e.InstancesMatching("GetReimburse")
	if err != nil {
		t.Fatal(err)
	}
	if len(matching) == 0 {
		t.Fatal("no reimbursed instances")
	}
	for i := 1; i < len(matching); i++ {
		if matching[i-1] >= matching[i] {
			t.Fatal("InstancesMatching not ascending")
		}
	}

	// Reimbursed without ever paying: possible in the model (visit loop may
	// take only UpdateRefer branches), and by construction every returned
	// instance must have a GetReimburse and no PayTreatment.
	odd, err := e.InstancesWithout("GetReimburse", "PayTreatment")
	if err != nil {
		t.Fatal(err)
	}
	for _, wid := range odd {
		n, err := e.Count("PayTreatment")
		if err != nil {
			t.Fatal(err)
		}
		_ = n
		set, err := e.Query("PayTreatment")
		if err != nil {
			t.Fatal(err)
		}
		for _, inc := range set.Incidents() {
			if inc.WID() == wid {
				t.Fatalf("wid %d returned by InstancesWithout but pays", wid)
			}
		}
	}
	// Consistency: matching = without(lack) ∪ (matching ∩ lacking).
	withPay, err := e.InstancesWithout("GetReimburse", "NoSuchActivity")
	if err != nil {
		t.Fatal(err)
	}
	if len(withPay) != len(matching) {
		t.Errorf("InstancesWithout(nonexistent) = %d ids, want all %d", len(withPay), len(matching))
	}

	if _, err := e.InstancesMatching("("); err == nil {
		t.Error("InstancesMatching syntax error: want error")
	}
	if _, err := e.InstancesWithout("(", "A"); err == nil {
		t.Error("InstancesWithout bad have: want error")
	}
	if _, err := e.InstancesWithout("A", "("); err == nil {
		t.Error("InstancesWithout bad lack: want error")
	}
}

func TestIncidentSetAlgebraThroughFacade(t *testing.T) {
	e := wlq.NewEngine(wlq.ClinicFig3())
	all, err := e.Query("SeeDoctor")
	if err != nil {
		t.Fatal(err)
	}
	wid2, err := e.Query("SeeDoctor & UpdateRefer")
	if err != nil {
		t.Fatal(err)
	}
	_ = wid2
	// Set operations are available directly on IncidentSet.
	inter := all.Intersect(all)
	if !inter.Equal(all) {
		t.Error("A ∩ A != A")
	}
	if diff := all.Difference(all); diff.Len() != 0 {
		t.Errorf("A \\ A = %s", diff)
	}
}

func TestDurationsThroughFacade(t *testing.T) {
	log, err := wlq.ClinicLogTimed(50, 6)
	if err != nil {
		t.Fatal(err)
	}
	e := wlq.NewEngine(log)
	st, err := e.Durations("GetRefer -> GetReimburse")
	if err != nil {
		t.Fatal(err)
	}
	if st.Counted == 0 || st.Mean <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := e.Durations("("); err == nil {
		t.Error("Durations syntax error: want error")
	}
	// Unstamped logs produce skips, not failures.
	plain := wlq.NewEngine(wlq.ClinicFig3())
	st2, err := plain.Durations("SeeDoctor")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Counted != 0 || st2.Skipped == 0 {
		t.Errorf("unstamped stats = %+v", st2)
	}
}

func TestEngineColumnarEquivalent(t *testing.T) {
	log, err := wlq.ClinicLog(60, 9)
	if err != nil {
		t.Fatal(err)
	}
	row := wlq.NewEngine(log)
	col := wlq.NewEngine(log, wlq.WithColumnar())
	for _, q := range []string{
		"GetRefer . CheckIn",
		"(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)",
		"UpdateRefer & TakeTreatment",
		"!SeeDoctor . END",
	} {
		a, err := row.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := col.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("columnar engine disagrees on %q:\nrow:      %s\ncolumnar: %s", q, a, b)
		}
		rc, err := row.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := col.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if rc != cc {
			t.Errorf("columnar Count disagrees on %q: row %d, columnar %d", q, rc, cc)
		}
	}
	// The sharded path over the columnar backend.
	a, _, err := col.QuerySharded(context.Background(), "UpdateRefer & TakeTreatment", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := row.Query("UpdateRefer & TakeTreatment")
	if !a.Equal(b) {
		t.Error("sharded columnar result differs from row result")
	}
}
