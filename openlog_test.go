package wlq_test

import (
	"path/filepath"
	"testing"

	"wlq"
)

func TestOpenLogSpecs(t *testing.T) {
	tests := []struct {
		spec      string
		wantInsts int // -1 = any positive count
	}{
		{"fig3", 3},
		{"clinic:5:7", 5},
		{"model:orders:4:1", 4},
	}
	for _, tt := range tests {
		l, err := wlq.OpenLog(tt.spec)
		if err != nil {
			t.Errorf("OpenLog(%q): %v", tt.spec, err)
			continue
		}
		if got := len(l.WIDs()); got != tt.wantInsts {
			t.Errorf("OpenLog(%q): %d instances, want %d", tt.spec, got, tt.wantInsts)
		}
	}
}

func TestOpenLogFileRoundTrip(t *testing.T) {
	l := wlq.ClinicFig3()
	path := filepath.Join(t.TempDir(), "fig3.jsonl")
	if err := wlq.SaveLog(path, l); err != nil {
		t.Fatal(err)
	}
	back, err := wlq.OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(l) {
		t.Fatal("OpenLog(file) did not round-trip the log")
	}
}

func TestOpenLogErrors(t *testing.T) {
	for _, spec := range []string{
		"clinic:notanumber:7",
		"clinic:5",
		"model:nosuchmodel:4:1",
		"model:orders:4",
		filepath.Join(t.TempDir(), "missing.jsonl"),
	} {
		if _, err := wlq.OpenLog(spec); err == nil {
			t.Errorf("OpenLog(%q) succeeded, want error", spec)
		}
	}
}
