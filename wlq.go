// Package wlq is a query engine for workflow logs, implementing the
// incident-pattern algebra of Tang, Mackey and Su, "Querying Workflow Logs".
//
// A workflow log (Definition 2) is a totally ordered sequence of records
// (lsn, wid, is-lsn, activity, αin, αout), one per activity execution across
// many concurrently running workflow instances. An incident pattern
// (Definition 3) describes a temporally related set of activity executions
// within one instance, composed from activity names with four operators:
//
//	A . B     consecutive  (paper: ⊙)  B immediately follows A
//	A -> B    sequential   (paper: ≺)  B eventually follows A
//	A | B     choice       (paper: ⊗)  either A or B
//	A & B     parallel     (paper: ⊕)  both, sharing no records
//
// plus negation (!A) and — as an extension — attribute guards
// (GetRefer[balance>5000]). Evaluating a pattern p over a log L yields its
// incident set incL(p) (Definition 4): every set of records matching p.
//
// Basic use:
//
//	log, _ := wlq.LoadLog("referrals.jsonl")
//	engine := wlq.NewEngine(log)
//	set, _ := engine.Query("UpdateRefer -> GetReimburse")
//	for _, inc := range set.Incidents() {
//		fmt.Println(inc)
//	}
//
// The engine evaluates with the merge-join strategy and the Theorem 2–5
// cost-based optimizer by default; options select the paper's verbatim
// Algorithm 1 joins (WithStrategy(StrategyNaive)) or disable rewriting
// (WithoutOptimizer) for measurements.
package wlq

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"wlq/internal/analytics"
	"wlq/internal/clinic"
	"wlq/internal/colstore"
	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
	"wlq/internal/enact"
	"wlq/internal/logio"
	"wlq/internal/models"
	"wlq/internal/obs"
	"wlq/internal/resilience"
	"wlq/internal/shard"
	"wlq/internal/stats"
	"wlq/internal/stream"
	"wlq/internal/wlog"
)

// Core data-model types, re-exported from the implementation packages.
type (
	// Log is a workflow log per Definition 2.
	Log = wlog.Log
	// Record is a log record per Definition 1.
	Record = wlog.Record
	// AttrMap is an attribute map (αin/αout).
	AttrMap = wlog.AttrMap
	// Value is an attribute value from the domain D (or ⊥).
	Value = wlog.Value
	// Builder assembles valid logs incrementally.
	Builder = wlog.Builder
	// Pattern is an incident pattern (Definition 3).
	Pattern = pattern.Node
	// Incident is one incident instance (Definition 4).
	Incident = incident.Incident
	// IncidentSet is a set of incidents, incL(p).
	IncidentSet = incident.Set
	// Report is a grouped aggregation over an incident set.
	Report = analytics.Report
	// Strategy selects the operator join implementation.
	Strategy = eval.Strategy
	// Monitor evaluates watch patterns continuously over a growing log.
	Monitor = stream.Monitor
	// Alert reports a Monitor watch firing.
	Alert = stream.Alert
	// Budget caps a query evaluation's resources (comparisons, produced
	// incidents, wall time, result bytes); zero fields are unlimited. See
	// WithBudget and docs/RESILIENCE.md.
	Budget = resilience.Budget
	// Completeness describes exactly which slices of the log a sharded
	// query's result covers; see QuerySharded and docs/RESILIENCE.md.
	Completeness = shard.Completeness
	// ShardOutcome details one shard excluded from a sharded query's result.
	ShardOutcome = shard.ShardOutcome
)

// ErrBudgetExceeded is the sentinel matched (via errors.Is) by every
// budget-abort error returned from a budgeted Query.
var ErrBudgetExceeded = resilience.ErrBudgetExceeded

// NewMonitor creates a streaming monitor delivering alerts to handler (nil
// is allowed). Register patterns with Watch, then feed records with Ingest
// or IngestLog; each watch alerts once per workflow instance, at the record
// that first completes an incident.
func NewMonitor(handler func(Alert)) *Monitor { return stream.NewMonitor(handler) }

// Evaluation strategies.
const (
	// StrategyNaive is the published Algorithm 1 (nested loops).
	StrategyNaive = eval.StrategyNaive
	// StrategyMerge exploits sorted incident sets (the default).
	StrategyMerge = eval.StrategyMerge
)

// Attrs builds an AttrMap from name/value pairs; see wlog.Attrs.
func Attrs(pairs ...any) AttrMap { return wlog.Attrs(pairs...) }

// NewLog constructs and validates a log from records.
func NewLog(records []Record) (*Log, error) { return wlog.New(records) }

// ParsePattern parses the textual pattern syntax into a Pattern.
func ParsePattern(query string) (Pattern, error) { return pattern.Parse(query) }

// MustParsePattern is ParsePattern, panicking on error.
func MustParsePattern(query string) Pattern { return pattern.MustParse(query) }

// PatternTree renders a pattern's incident tree (Definition 6) as ASCII art.
func PatternTree(p Pattern) string { return pattern.TreeString(p) }

// LoadLog reads a validated log from a file; the format is inferred from
// the extension (.jsonl/.json or .log/.txt/.tsv).
func LoadLog(path string) (*Log, error) { return logio.ReadFile(path) }

// OpenLog resolves a log specification as accepted by the CLI tools' -log
// flags and the query service's startup arguments:
//
//	fig3                            the paper's Figure 3 example log
//	clinic:<instances>:<seed>       a generated clinic-referral log
//	model:<name>:<instances>:<seed> a generated log of a named model
//	<path>                          a log file; native formats by extension
//	                                (.jsonl/.json/.log/.txt/.tsv) plus the
//	                                .csv and .xes import formats
func OpenLog(spec string) (*Log, error) {
	switch {
	case spec == "fig3":
		return ClinicFig3(), nil
	case strings.HasPrefix(spec, "clinic:"):
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("malformed %q (want clinic:<instances>:<seed>)", spec)
		}
		instances, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("instances in %q: %w", spec, err)
		}
		seed, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seed in %q: %w", spec, err)
		}
		return ClinicLog(instances, seed)
	case strings.HasPrefix(spec, "model:"):
		parts := strings.Split(spec, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("malformed %q (want model:<name>:<instances>:<seed>)", spec)
		}
		c, err := models.ByName(parts[1])
		if err != nil {
			return nil, err
		}
		instances, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("instances in %q: %w", spec, err)
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seed in %q: %w", spec, err)
		}
		return c.Generate(instances, seed)
	default:
		return logio.ReadFileAny(spec)
	}
}

// SaveLog writes a log to a file; the format is inferred from the extension.
func SaveLog(path string, l *Log) error { return logio.WriteFile(path, l) }

// DFG is a directly-follows graph: how often each activity is immediately
// followed by each other, across all instances.
type DFG = analytics.DFG

// DirectlyFollows computes the log's directly-follows graph; withEndpoints
// includes arcs from START and into END records.
func DirectlyFollows(l *Log, withEndpoints bool) *DFG {
	return analytics.DirectlyFollows(l, withEndpoints)
}

// Profile summarizes a log's shape (sizes, interleaving, activity
// frequencies).
type Profile = analytics.Profile

// ProfileLog computes a log Profile.
func ProfileLog(l *Log) Profile { return analytics.ProfileLog(l) }

// CSVOptions configures ImportCSV (column names, ordering, completion).
type CSVOptions = logio.CSVOptions

// ImportCSV reads a headered CSV event log (case id + activity name per
// row, optional timestamp and data columns) and assembles a valid workflow
// log, synthesizing the START/END bookkeeping records.
func ImportCSV(r io.Reader, opts CSVOptions) (*Log, error) {
	return logio.ImportCSV(r, opts)
}

// ExportCSV writes the log as a headered CSV event log (START/END records
// omitted, αout attributes as columns).
func ExportCSV(w io.Writer, l *Log) error { return logio.ExportCSV(w, l) }

// XESOptions configures ImportXES (trace interleaving, completion).
type XESOptions = logio.XESOptions

// ImportXES reads an XES (IEEE 1849) process-mining event log — the
// standard interchange format — and assembles a valid workflow log.
func ImportXES(r io.Reader, opts XESOptions) (*Log, error) {
	return logio.ImportXES(r, opts)
}

// ClinicFig3 returns the paper's Figure 3 example log (20 records, three
// referral instances).
func ClinicFig3() *Log { return clinic.Fig3() }

// ClinicLog generates a synthetic clinic-referral log with the given number
// of instances, enacting the workflow model of the paper's Example 2.
func ClinicLog(instances int, seed int64) (*Log, error) {
	return clinic.Generate(instances, seed)
}

// ClinicLogTimed is ClinicLog with simulated wall-clock timestamps on every
// record (attribute "time", RFC 3339), enabling duration analytics.
func ClinicLogTimed(instances int, seed int64) (*Log, error) {
	return enact.Run(clinic.Model(), enact.Config{
		Instances:        instances,
		Seed:             seed,
		Policy:           enact.PolicyRandom,
		CompleteFraction: 0.9,
		Stamp:            true,
	})
}

// Engine evaluates incident-pattern queries over one log. It is safe for
// concurrent use: all state is immutable after construction.
type Engine struct {
	log      *Log
	src      eval.Source
	strategy Strategy
	optimize bool
	limit    int
	budget   Budget
	columnar bool
	stats    *stats.Registry
}

// Option configures an Engine.
type Option func(*Engine)

// WithStrategy selects the operator join implementation.
func WithStrategy(s Strategy) Option {
	return func(e *Engine) { e.strategy = s }
}

// WithoutOptimizer disables the Theorem 2–5 rewriter, evaluating queries
// exactly as written.
func WithoutOptimizer() Option {
	return func(e *Engine) { e.optimize = false }
}

// WithLimit caps (best effort) the number of incidents produced per
// operator per instance — a safety valve for worst-case queries.
func WithLimit(n int) Option {
	return func(e *Engine) { e.limit = n }
}

// WithBudget caps each query's evaluation resources; a tripped limit aborts
// the query with an error wrapping ErrBudgetExceeded. Enforced by Query,
// QueryPattern and QueryTraced (the entry points with an error channel);
// Exists and Count are unaffected.
func WithBudget(b Budget) Option {
	return func(e *Engine) { e.budget = b }
}

// WithColumnar selects the columnar storage backend (internal/colstore):
// interned activity symbols and per-activity posting lists instead of the
// row-oriented per-instance maps. Answers are identical on either backend
// (enforced by the cross-backend equivalence suite); the trade-off is
// purely physical — see docs/STORAGE.md.
func WithColumnar() Option {
	return func(e *Engine) { e.columnar = true }
}

// StatsRegistry accumulates per-log evaluation statistics — activity match
// counts and observed operator selectivities — and derives the measured
// selectivities the adaptive cost model ranks plans with. See WithStats and
// docs/OBSERVABILITY.md.
type StatsRegistry = stats.Registry

// NewStatsRegistry returns an empty statistics registry.
func NewStatsRegistry() *StatsRegistry { return stats.New() }

// LoadStats reads a statistics snapshot from path. A missing file yields an
// empty registry; a corrupt or schema-mismatched file is an error.
func LoadStats(path string) (*StatsRegistry, error) { return stats.Load(path) }

// SaveStats writes the registry's snapshot atomically to path.
func SaveStats(reg *StatsRegistry, path string) error { return reg.Save(path) }

// StatsPathFor returns the default statistics snapshot path for a -log spec
// (the log path plus ".stats.json"), or "" for synthetic specs like "fig3"
// or "clinic:1500:42" that have no file to sit next to.
func StatsPathFor(spec string) string { return stats.PathFor(spec) }

// WithStats attaches a statistics registry, turning on the adaptive cost
// model: queries are metered, successful complete evaluations feed the
// registry, and the optimizer ranks plans with the measured selectivities
// once enough evidence accumulates (the model constants until then).
// Partial, budget-tripped, and failed evaluations never contribute. The
// registry may be shared across engines over the same log and is safe for
// concurrent use; nil is allowed and leaves the engine fully static.
func WithStats(reg *StatsRegistry) Option {
	return func(e *Engine) { e.stats = reg }
}

// NewEngine indexes the log and returns a query engine. The storage
// backend is built after the options are applied, so WithColumnar controls
// which representation is constructed.
func NewEngine(l *Log, opts ...Option) *Engine {
	e := &Engine{
		log:      l,
		strategy: StrategyMerge,
		optimize: true,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.columnar {
		e.src = colstore.Build(l)
	} else {
		e.src = eval.NewIndex(l)
	}
	return e
}

// Log returns the engine's log.
func (e *Engine) Log() *Log { return e.log }

// Stats returns the attached statistics registry, or nil when the engine is
// static.
func (e *Engine) Stats() *StatsRegistry { return e.stats }

// selectivities returns the cost-model selectivities for this engine's
// queries: measured values from the registry when attached and warmed, the
// model constants otherwise.
func (e *Engine) selectivities() rewrite.Selectivities {
	if e.stats != nil {
		return e.stats.Selectivities()
	}
	return rewrite.ModelSelectivities()
}

// prepare parses and (optionally) optimizes a query.
func (e *Engine) prepare(query string) (Pattern, error) {
	p, err := pattern.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.preparePattern(p), nil
}

func (e *Engine) preparePattern(p Pattern) Pattern {
	if e.optimize {
		p, _ = rewrite.OptimizeWith(p, e.src, e.selectivities())
	}
	return p
}

func (e *Engine) evaluator() *eval.Evaluator {
	return eval.New(e.src, eval.Options{Strategy: e.strategy, Limit: e.limit, Budget: e.budget})
}

// evalSet evaluates a prepared plan, routing through the budget-enforcing
// path when a budget is set (the plain Eval has no error channel). With a
// statistics registry attached the evaluation is metered and — only on
// success, so truncated runs never bias the registry — flushed into it.
func (e *Engine) evalSet(p Pattern) (*IncidentSet, error) {
	var meter *eval.Meter
	opts := eval.Options{Strategy: e.strategy, Limit: e.limit, Budget: e.budget}
	if e.stats != nil {
		meter = eval.NewMeter(p)
		opts.Meter = meter
	}
	ev := eval.New(e.src, opts)
	if !e.budget.IsZero() {
		set, err := ev.EvalParallelCtx(context.Background(), p, 1, nil)
		if err != nil {
			return nil, err
		}
		meter.Flush(e.stats)
		return set, nil
	}
	set := ev.Eval(p)
	meter.Flush(e.stats)
	return set, nil
}

// Query evaluates a textual query and returns its incident set incL(p).
func (e *Engine) Query(query string) (*IncidentSet, error) {
	p, err := e.prepare(query)
	if err != nil {
		return nil, err
	}
	return e.evalSet(p)
}

// QueryPattern evaluates an already-parsed pattern. When the engine has a
// budget, a tripped limit surfaces as a nil set (use Query for the error).
func (e *Engine) QueryPattern(p Pattern) *IncidentSet {
	set, _ := e.evalSet(e.preparePattern(p))
	return set
}

// QuerySharded evaluates a textual query with the log partitioned into n
// wid-range shards (n <= 0 means GOMAXPROCS), each an isolated failure
// domain: a shard that panics or exhausts its slice of the engine's budget
// is excluded from the result instead of failing the whole query. The
// returned Completeness says exactly which wid ranges the result covers;
// with no faults it is Complete and the set equals Query's output exactly.
// An error is returned only when the query as a whole is lost (parse error,
// cancelled context, or zero surviving shards).
//
// Each call builds a fresh one-shot executor, so circuit-breaker history
// does not persist across calls; long-lived breaker state is a property of
// the query service (wlq-serve), which keeps one executor per loaded log.
func (e *Engine) QuerySharded(ctx context.Context, query string, shards int) (*IncidentSet, *Completeness, error) {
	p, err := e.prepare(query)
	if err != nil {
		return nil, nil, err
	}
	opts := eval.Options{Strategy: e.strategy, Limit: e.limit, Budget: e.budget}
	var meter *eval.Meter
	if e.stats != nil {
		meter = eval.NewMeter(p)
		opts.Meter = meter
	}
	x := shard.NewExecutor(e.src, shard.Config{Shards: shards})
	set, comp, err := x.Execute(ctx, p, opts, nil)
	// Only a fully complete sharded answer feeds the registry: excluded
	// shards mean under-counted outputs, which would read as selectivity.
	if err == nil && comp != nil && comp.Complete {
		meter.Flush(e.stats)
	}
	return set, comp, err
}

// Exists reports whether any incident of the query exists, short-circuiting
// across instances — the efficient form of the paper's yes/no questions.
func (e *Engine) Exists(query string) (bool, error) {
	p, err := e.prepare(query)
	if err != nil {
		return false, err
	}
	return e.evaluator().Exists(p), nil
}

// Count returns |incL(p)| for the query.
func (e *Engine) Count(query string) (int, error) {
	p, err := e.prepare(query)
	if err != nil {
		return 0, err
	}
	return e.evaluator().Count(p), nil
}

// GroupByAttr evaluates the query and counts its incidents grouped by the
// named attribute, taken from the first record of each incident that
// defines it (αout, then αin).
func (e *Engine) GroupByAttr(query, attr string) (*Report, error) {
	set, err := e.Query(query)
	if err != nil {
		return nil, err
	}
	return analytics.GroupBy(set, analytics.ByAttr(e.src, attr)), nil
}

// GroupByInstanceAttr is GroupByAttr but draws the key from anywhere in the
// incident's workflow instance (e.g. group CheckIn incidents by the year
// set at GetRefer).
func (e *Engine) GroupByInstanceAttr(query, attr string) (*Report, error) {
	set, err := e.Query(query)
	if err != nil {
		return nil, err
	}
	return analytics.GroupBy(set, analytics.ByInstanceAttr(e.src, attr)), nil
}

// InstancesMatching returns the ids of workflow instances with at least one
// incident of the query, ascending.
func (e *Engine) InstancesMatching(query string) ([]uint64, error) {
	set, err := e.Query(query)
	if err != nil {
		return nil, err
	}
	return set.WIDs(), nil
}

// InstancesWithout returns the ids of instances that match the first query
// but have no incident of the second — the absence-style compliance check
// ("orders that shipped but never passed a fraud check") the pattern
// language alone cannot express, since its negation is atomic-only.
func (e *Engine) InstancesWithout(haveQuery, lackQuery string) ([]uint64, error) {
	have, err := e.InstancesMatching(haveQuery)
	if err != nil {
		return nil, err
	}
	lackSet, err := e.Query(lackQuery)
	if err != nil {
		return nil, err
	}
	lack := make(map[uint64]bool)
	for _, wid := range lackSet.WIDs() {
		lack[wid] = true
	}
	out := make([]uint64, 0, len(have))
	for _, wid := range have {
		if !lack[wid] {
			out = append(out, wid)
		}
	}
	return out, nil
}

// DurationStats summarizes the wall-clock spans of a query's incidents
// (records must carry the "time" attribute — stamped, or imported from
// CSV/XES with timestamps).
type DurationStats = analytics.DurationStats

// Durations evaluates the query and summarizes each incident's wall-clock
// span (last record time minus first record time).
func (e *Engine) Durations(query string) (DurationStats, error) {
	set, err := e.Query(query)
	if err != nil {
		return DurationStats{}, err
	}
	return analytics.Durations(e.src, set), nil
}

// DistinctInstances evaluates the query and counts the workflow instances
// with at least one incident ("how many students ...").
func (e *Engine) DistinctInstances(query string) (int, error) {
	set, err := e.Query(query)
	if err != nil {
		return 0, err
	}
	return analytics.DistinctInstances(set), nil
}

// IncidentRecords materializes an incident back into its log records.
func (e *Engine) IncidentRecords(inc Incident) []Record {
	return analytics.Records(e.src, inc)
}

// AtomBinding explains one atom of a matched pattern: which record (by
// is-lsn) the atom matched within an incident.
type AtomBinding struct {
	// Atom is the atomic pattern in its printed form, e.g. "!GetRefer".
	Atom string
	// Index is the atom's left-to-right position in the pattern.
	Index int
	// Seq is the is-lsn of the matched record.
	Seq uint64
}

// BindIncident explains how an incident matches a query: one AtomBinding
// per atom on the branches the incident took, in atom order. It returns an
// error when inc is not an incident of the query (note: the raw query is
// used, not its optimized form, so atom indexes match the query as
// written).
func (e *Engine) BindIncident(query string, inc Incident) ([]AtomBinding, error) {
	p, err := pattern.Parse(query)
	if err != nil {
		return nil, err
	}
	bindings, ok := eval.New(e.src, eval.Options{}).Bindings(p, inc)
	if !ok {
		return nil, fmt.Errorf("wlq: %v is not an incident of %q", inc, query)
	}
	atoms := pattern.Atoms(p)
	out := make([]AtomBinding, 0, len(bindings))
	for idx := 0; idx < len(atoms); idx++ {
		seq, ok := bindings[idx]
		if !ok {
			continue
		}
		out = append(out, AtomBinding{Atom: atoms[idx].String(), Index: idx, Seq: seq})
	}
	return out, nil
}

// QueryTrace is the full observability record of one traced query: the
// parse → canonicalize → rewrite → evaluate span tree plus the per-operator
// Lemma 1 cost table (measured comparisons vs. predicted bounds). See
// docs/OBSERVABILITY.md for the span glossary and column definitions.
type QueryTrace = obs.QueryTrace

// Trace is a span collector for traced query execution; see QueryTraced.
type Trace = obs.Trace

// NewTrace starts a trace whose root span carries the given name.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// WithTrace returns a context carrying the trace; QueryTraced attaches its
// pipeline spans to it instead of creating a fresh trace.
func WithTrace(ctx context.Context, t *Trace) context.Context { return obs.WithTrace(ctx, t) }

// QueryTraced evaluates a textual query with execution tracing: every
// pipeline stage becomes a timed span, every applied rewrite law a child
// span with its cost bracket, and every plan node a cost-table row pairing
// its measured comparison work with the Lemma 1 predicted bound. If ctx
// already carries an obs.Trace the spans attach to it; otherwise a fresh
// trace is created. Tracing changes no results — the incident set is
// identical to Query's.
func (e *Engine) QueryTraced(ctx context.Context, query string) (*IncidentSet, *QueryTrace, error) {
	tr := obs.FromContext(ctx)
	if tr == nil {
		tr = obs.NewTrace("wlq.query")
		ctx = obs.WithTrace(ctx, tr)
	}

	sp := tr.StartSpan("parse")
	p, err := pattern.Parse(query)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, nil, err
	}
	sp.SetAttr("pattern", p.String())
	sp.SetAttr("atoms", len(pattern.Atoms(p)))
	sp.SetAttr("operators", pattern.Operators(p))
	sp.End()

	sp = tr.StartSpan("canonicalize")
	sp.SetAttr("key", pattern.CanonicalKey(p))
	sp.End()

	sel := e.selectivities()
	plan := pattern.Node(p)
	if e.optimize {
		sp = tr.StartSpan("rewrite")
		var rt rewrite.Trace
		plan, rt = rewrite.ExplainWith(p, e.src, sel)
		obs.RewriteSpans(sp, rt)
		sp.End()
	}

	meter := eval.NewMeter(plan)
	sp = tr.StartSpan("eval")
	ev := eval.New(e.src, eval.Options{Strategy: e.strategy, Limit: e.limit, Meter: meter, Budget: e.budget})
	var qs eval.QueryStats
	set, err := ev.EvalParallelCtx(ctx, plan, 0, &qs)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, nil, err
	}
	sp.SetAttr("strategy", e.strategy.String())
	sp.SetAttr("workers", qs.Workers)
	sp.SetAttr("instances", qs.Instances)
	sp.SetAttr("incidents", qs.Incidents)
	obs.EvalSpansWith(sp, plan, meter, sel)
	sp.End()
	tr.End()
	meter.Flush(e.stats)

	return set, &obs.QueryTrace{
		Query:     query,
		Plan:      plan.String(),
		Strategy:  e.strategy.String(),
		Spans:     tr.Root(),
		CostTable: obs.CostTableWith(plan, meter, sel),
	}, nil
}

// Explain parses the query and reports the incident tree, the optimizer's
// rewrite (if any), and the Lemma 1 cost estimates — without evaluating.
func (e *Engine) Explain(query string) (string, error) {
	p, err := pattern.Parse(query)
	if err != nil {
		return "", err
	}
	sel := e.selectivities()
	out := "query:     " + p.String() + "\n"
	out += "paper form: " + pattern.Pretty(p) + "\n"
	out += "incident tree:\n" + pattern.TreeString(p)
	if e.optimize {
		opt, ex := rewrite.OptimizeWith(p, e.src, sel)
		if !pattern.Equal(p, opt) {
			out += "optimized: " + opt.String() + "\n"
		}
		out += "plan:      " + ex.String() + "\n"
	} else {
		est := rewrite.NewEstimatorWith(e.src, sel)
		out += fmt.Sprintf("plan:      estimated cost %.4g (optimizer off)\n", est.Cost(p))
	}
	if e.stats != nil {
		out += fmt.Sprintf("cost model: adaptive (measured=%v; consecutive=%.4g %s, sequential=%.4g %s, parallel=%.4g %s, guard=%.4g %s)\n",
			sel.Measured(),
			sel.Consecutive, sel.ConsecutiveSource,
			sel.Sequential, sel.SequentialSource,
			sel.Parallel, sel.ParallelSource,
			sel.Guard, sel.GuardSource)
	}
	return out, nil
}
