# Development entry points. Everything is plain `go` — the Makefile only
# names the common invocations.

GO ?= go

.PHONY: all build vet test test-race cover bench bench-report bench-smoke cluster-smoke ingest-smoke experiments examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# The testing.B series (one family per paper artifact; see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the checked-in BENCH_*.json run summaries (both backends plus
# the adaptive cost model, full size) and print the comparisons. Run on an
# otherwise idle machine.
bench-report:
	$(GO) run ./cmd/wlq-bench -suite -backend row -json BENCH_baseline.json
	$(GO) run ./cmd/wlq-bench -suite -backend columnar -json BENCH_columnar.json
	$(GO) run ./cmd/wlq-bench -suite -backend columnar -adaptive -json BENCH_adaptive.json
	$(GO) run ./cmd/wlq-bench -compare BENCH_baseline.json,BENCH_columnar.json
	$(GO) run ./cmd/wlq-bench -compare BENCH_columnar.json,BENCH_adaptive.json

# Fast answer check: run the suite on a small log for both backends, with
# and without the adaptive cost model, and fail if any answer digests
# diverge from the row-backend static baseline. CI runs this on every push.
bench-smoke:
	$(GO) run ./cmd/wlq-bench -suite -quick -backend row -json /tmp/wlq-bench-row.json
	$(GO) run ./cmd/wlq-bench -suite -quick -backend columnar -json /tmp/wlq-bench-columnar.json
	$(GO) run ./cmd/wlq-bench -suite -quick -backend row -adaptive -json /tmp/wlq-bench-row-adaptive.json
	$(GO) run ./cmd/wlq-bench -suite -quick -backend columnar -adaptive -json /tmp/wlq-bench-columnar-adaptive.json
	$(GO) run ./cmd/wlq-bench -compare /tmp/wlq-bench-row.json,/tmp/wlq-bench-columnar.json
	$(GO) run ./cmd/wlq-bench -compare /tmp/wlq-bench-row.json,/tmp/wlq-bench-row-adaptive.json
	$(GO) run ./cmd/wlq-bench -compare /tmp/wlq-bench-row.json,/tmp/wlq-bench-columnar-adaptive.json

# Multi-process cluster smoke: coordinator + 3 workers on loopback, one
# killed mid-run (206 + completeness), rejoined (digest-equal 200). CI runs
# this on every push.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Crash-recovery smoke: a live-ingest server is SIGKILLed mid-append and
# restarted on the same WAL; the recovered state must answer digest-equal
# to a control server fed exactly the durable prefix. CI runs this on every
# push.
ingest-smoke:
	./scripts/ingest_crash_smoke.sh

# Regenerate the EXPERIMENTS.md tables (E1-E12).
experiments:
	$(GO) run ./cmd/wlq-bench

experiments-quick:
	$(GO) run ./cmd/wlq-bench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clinic
	$(GO) run ./examples/audit
	$(GO) run ./examples/monitor

# Short fuzzing pass over the parsers and codecs.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/core/pattern/
	$(GO) test -fuzz=FuzzDecodeText -fuzztime=30s ./internal/logio/
	$(GO) test -fuzz=FuzzDecodeJSONL -fuzztime=30s ./internal/logio/
	$(GO) test -fuzz=FuzzScanSegment -fuzztime=30s ./internal/wal/

clean:
	$(GO) clean ./...
