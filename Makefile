# Development entry points. Everything is plain `go` — the Makefile only
# names the common invocations.

GO ?= go

.PHONY: all build vet test test-race cover bench experiments examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# The testing.B series (one family per paper artifact; see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the EXPERIMENTS.md tables (E1-E12).
experiments:
	$(GO) run ./cmd/wlq-bench

experiments-quick:
	$(GO) run ./cmd/wlq-bench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clinic
	$(GO) run ./examples/audit
	$(GO) run ./examples/monitor

# Short fuzzing pass over the parsers and codecs.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/core/pattern/
	$(GO) test -fuzz=FuzzDecodeText -fuzztime=30s ./internal/logio/
	$(GO) test -fuzz=FuzzDecodeJSONL -fuzztime=30s ./internal/logio/

clean:
	$(GO) clean ./...
