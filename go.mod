module wlq

go 1.22
