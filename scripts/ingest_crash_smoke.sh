#!/usr/bin/env bash
# Crash-recovery smoke test for live ingestion: a real wlq-serve process
# accepts appends through its write-ahead log and is killed with SIGKILL
# mid-stream — no drain, no flush. A second process opening the same WAL
# directory must recover every record the first one acknowledged (and at
# most the durable unacknowledged tail of one torn batch), then answer a
# battery of clinic queries digest-equal to a control server fed exactly
# the recovered prefix. This is the process-level twin of
# internal/server/ingest_test.go's TestAppendRecovery.
#
# Requires: go, curl, python3. Exits non-zero on the first broken assertion.
set -euo pipefail

BASE_PORT="${INGEST_SMOKE_PORT:-19280}"
LOG_SPEC="clinic=clinic:8:7"

VICTIM_PORT=$BASE_PORT
CONTROL_PORT=$((BASE_PORT + 1))

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "ingest-smoke: $*"; }
die() { echo "ingest-smoke: FAIL: $*" >&2; exit 1; }

say "building wlq-serve"
go build -o "$workdir/wlq-serve" ./cmd/wlq-serve

start_server() { # port wal-subdir logfile -> pid
  "$workdir/wlq-serve" -addr "127.0.0.1:$1" -log "$LOG_SPEC" \
    -ingest -wal-dir "$workdir/$2" -no-request-log \
    >"$workdir/$3" 2>&1 &
  echo $!
}

wait_ready() { # url
  for _ in $(seq 1 50); do
    if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  die "$1 never became ready"
}

watermark() { # url -> the live log's applied lsn high-water mark
  curl -fsS "$1/v1/logs" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
log = doc["logs"][0]
assert log.get("live"), "log not live"
print(log.get("ingest_lsn", 0))
'
}

say "starting victim on port $VICTIM_PORT"
pids+=("$(start_server "$VICTIM_PORT" wal victim.log)")
wait_ready "http://127.0.0.1:$VICTIM_PORT"

BASE_LSN=$(watermark "http://127.0.0.1:$VICTIM_PORT")
say "base snapshot watermark: lsn $BASE_LSN"

# The appender drives complete 4-record clinic instances (START, GetRefer,
# SeeDoctor, END) one batch per request, with explicit dense lsns so the
# control server can be fed the byte-identical prefix later. Every attempted
# line lands in generated.jsonl BEFORE it is posted; every acknowledged
# batch's last_lsn lands in confirmed_lsn.txt. The appender dies with the
# server — any non-200 stops it.
appender() {
  local lsn=$BASE_LSN
  for i in $(seq 1 2000); do
    local wid=$((1000 + i))
    local batch="" seq=0
    for act in START GetRefer SeeDoctor END; do
      seq=$((seq + 1)); lsn=$((lsn + 1))
      batch+="{\"lsn\":$lsn,\"wid\":$wid,\"seq\":$seq,\"act\":\"$act\"}"$'\n'
    done
    printf '%s' "$batch" >>"$workdir/generated.jsonl"
    local code
    code=$(curl -sS -o "$workdir/append-resp.json" -w '%{http_code}' \
      --data-binary "$batch" \
      "http://127.0.0.1:$VICTIM_PORT/v1/logs/clinic/append" 2>/dev/null) || return 0
    [ "$code" = 200 ] || return 0
    python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["last_lsn"])' \
      "$workdir/append-resp.json" >"$workdir/confirmed_lsn.txt"
  done
}
appender &
appender_pid=$!

say "waiting for acknowledged appends, then killing the victim mid-stream"
for i in $(seq 1 50); do
  if [ -s "$workdir/confirmed_lsn.txt" ] \
    && [ "$(cat "$workdir/confirmed_lsn.txt")" -ge $((BASE_LSN + 40)) ]; then break; fi
  [ "$i" = 50 ] && die "appender never confirmed 10 batches: $(cat "$workdir/victim.log")"
  sleep 0.1
done
kill -9 "${pids[0]}"
wait "$appender_pid" 2>/dev/null || true
CONFIRMED_LSN=$(cat "$workdir/confirmed_lsn.txt")
say "victim killed; last acknowledged lsn $CONFIRMED_LSN"

[ -n "$(ls -A "$workdir/wal/clinic" 2>/dev/null)" ] \
  || die "no WAL segments under $workdir/wal/clinic"

say "restarting on the same WAL directory"
pids[0]=$(start_server "$VICTIM_PORT" wal victim2.log)
wait_ready "http://127.0.0.1:$VICTIM_PORT"

RECOVERED_LSN=$(watermark "http://127.0.0.1:$VICTIM_PORT")
say "recovered watermark: lsn $RECOVERED_LSN"
# Durability contract: every acknowledged record survives. The recovered
# watermark may exceed the confirmed one by the durable tail of the batch
# whose response the kill swallowed, never lag it.
[ "$RECOVERED_LSN" -ge "$CONFIRMED_LSN" ] \
  || die "acknowledged records lost: recovered lsn $RECOVERED_LSN < confirmed $CONFIRMED_LSN"

curl -fsS "http://127.0.0.1:$VICTIM_PORT/metrics" >"$workdir/metrics.json"
python3 -c '
import json, sys
ing = json.load(open(sys.argv[1])).get("ingest") or sys.exit("no ingest metrics section")
want = int(sys.argv[2])
assert ing["replayed"] == want, f"replayed {ing['replayed']}, want {want}"
' "$workdir/metrics.json" $((RECOVERED_LSN - BASE_LSN))
say "recovery replayed $((RECOVERED_LSN - BASE_LSN)) WAL records over the snapshot"

say "feeding the control server the recovered prefix"
pids+=("$(start_server "$CONTROL_PORT" control-wal control.log)")
wait_ready "http://127.0.0.1:$CONTROL_PORT"
head -n $((RECOVERED_LSN - BASE_LSN)) "$workdir/generated.jsonl" >"$workdir/prefix.jsonl"
code=$(curl -sS -o "$workdir/control-append.json" -w '%{http_code}' \
  --data-binary @"$workdir/prefix.jsonl" \
  "http://127.0.0.1:$CONTROL_PORT/v1/logs/clinic/append")
[ "$code" = 200 ] || die "control append returned $code: $(cat "$workdir/control-append.json")"

say "recovered answers must be digest-equal to the control's"
QUERIES=(
  '{"log":"clinic","query":"GetRefer -> SeeDoctor"}'
  '{"log":"clinic","query":"GetRefer . SeeDoctor"}'
  '{"log":"clinic","query":"GetRefer | UpdateRefer"}'
  '{"log":"clinic","query":"SeeDoctor -> (UpdateRefer -> GetReimburse)"}'
  '{"log":"clinic","query":"!CheckIn . SeeDoctor"}'
  '{"log":"clinic","query":"GetRefer -> SeeDoctor","mode":"count"}'
  '{"log":"clinic","query":"SeeDoctor","mode":"instances"}'
)
for q in "${QUERIES[@]}"; do
  for side in victim control; do
    port=$VICTIM_PORT; [ "$side" = control ] && port=$CONTROL_PORT
    code=$(curl -sS -o "$workdir/$side-q.json" -w '%{http_code}' \
      -H 'Content-Type: application/json' -d "$q" "http://127.0.0.1:$port/v1/query")
    [ "$code" = 200 ] || die "$side query $q returned $code: $(cat "$workdir/$side-q.json")"
  done
  # Digest only the answer-defining fields; timings differ run to run.
  digest='import json,sys
doc = json.load(open(sys.argv[1]))
keep = {k: doc.get(k) for k in ("count", "incidents", "instances", "exists")}
print(json.dumps(keep, sort_keys=True))'
  a=$(python3 -c "$digest" "$workdir/victim-q.json")
  b=$(python3 -c "$digest" "$workdir/control-q.json")
  [ "$a" = "$b" ] || die "answers diverge for $q
recovered: $a
control:   $b"
done
say "all ${#QUERIES[@]} queries digest-equal"

say "recovered server must still accept appends at the watermark"
next=$((RECOVERED_LSN + 1))
body="{\"lsn\":$next,\"wid\":9999,\"seq\":1,\"act\":\"START\"}"
code=$(curl -sS -o "$workdir/post-recovery.json" -w '%{http_code}' \
  --data-binary "$body" "http://127.0.0.1:$VICTIM_PORT/v1/logs/clinic/append")
[ "$code" = 200 ] || die "post-recovery append returned $code: $(cat "$workdir/post-recovery.json")"

say "PASS"
