#!/usr/bin/env bash
# Multi-process cluster smoke test: a coordinator and three workers as real
# separate processes on loopback. One worker is killed mid-run; the
# coordinator must degrade to a 206 whose completeness names the loss, whose
# flight-recorder capture records the victim as failed alongside a stitched
# cross-process trace with worker-attributed spans from the survivors, and
# flag the worker on /readyz; after the worker rejoins, the same query must
# answer 200 with a digest equal to a single-node server's. This is the
# process-level twin of internal/server/cluster_test.go — same contract, no
# shared memory.
#
# Requires: go, curl, python3. Exits non-zero on the first broken assertion.
set -euo pipefail

BASE_PORT="${CLUSTER_SMOKE_PORT:-19180}"
LOG_SPEC="clinic=clinic:64:7"
QUERY='{"log":"clinic","query":"GetRefer -> SeeDoctor","partial":true}'

COORD_PORT=$BASE_PORT
W1_PORT=$((BASE_PORT + 1))
W2_PORT=$((BASE_PORT + 2))
W3_PORT=$((BASE_PORT + 3))
SINGLE_PORT=$((BASE_PORT + 4))

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "cluster-smoke: $*"; }
die() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

say "building wlq-serve"
go build -o "$workdir/wlq-serve" ./cmd/wlq-serve

start_worker() { # port -> pid
  "$workdir/wlq-serve" -worker -addr "127.0.0.1:$1" -log "$LOG_SPEC" \
    -no-request-log >"$workdir/worker-$1.log" 2>&1 &
  echo $!
}

wait_ready() { # url
  for _ in $(seq 1 50); do
    if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  die "$1 never became ready"
}

# digest extracts the answer-defining fields of a 200 body.
digest() { # file
  python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
print(json.dumps({"count": doc["count"], "incidents": doc.get("incidents")}, sort_keys=True))
' "$1"
}

post() { # url outfile -> status code on stdout
  curl -sS -o "$2" -w '%{http_code}' -H 'Content-Type: application/json' \
    -d "$QUERY" "$1/v1/query"
}

say "starting 3 workers + coordinator + single-node reference"
pids+=("$(start_worker "$W1_PORT")")
pids+=("$(start_worker "$W2_PORT")")
pids+=("$(start_worker "$W3_PORT")")
"$workdir/wlq-serve" -addr "127.0.0.1:$COORD_PORT" -log "$LOG_SPEC" \
  -cluster-workers "http://127.0.0.1:$W1_PORT,http://127.0.0.1:$W2_PORT,http://127.0.0.1:$W3_PORT" \
  -worker-attempts 1 -breaker-threshold 1 -breaker-cooldown 2s \
  -probe-interval 500ms -cache -1 -no-request-log \
  >"$workdir/coordinator.log" 2>&1 &
pids+=($!)
"$workdir/wlq-serve" -addr "127.0.0.1:$SINGLE_PORT" -log "$LOG_SPEC" \
  -no-request-log >"$workdir/single.log" 2>&1 &
pids+=($!)

for port in "$W1_PORT" "$W2_PORT" "$W3_PORT" "$COORD_PORT" "$SINGLE_PORT"; do
  wait_ready "http://127.0.0.1:$port"
done

say "healthy fleet: answer must match the single-node reference"
code=$(post "http://127.0.0.1:$SINGLE_PORT" "$workdir/single.json")
[ "$code" = 200 ] || die "single-node query returned $code"
code=$(post "http://127.0.0.1:$COORD_PORT" "$workdir/healthy.json")
[ "$code" = 200 ] || die "healthy cluster query returned $code (want 200): $(cat "$workdir/healthy.json")"
[ "$(digest "$workdir/single.json")" = "$(digest "$workdir/healthy.json")" ] \
  || die "healthy cluster answer diverges from single-node"

say "killing worker 2 (port $W2_PORT)"
kill -9 "${pids[1]}"

code=$(post "http://127.0.0.1:$COORD_PORT" "$workdir/degraded.json")
[ "$code" = 206 ] || die "degraded query returned $code (want 206): $(cat "$workdir/degraded.json")"
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
comp = doc.get("completeness") or sys.exit("206 without completeness")
assert doc.get("partial") is True, "206 not marked partial"
assert comp["complete"] is False, "degraded completeness claims complete"
fails = comp.get("failures") or sys.exit("no failures named")
victim = sys.argv[2]
assert any(f.get("worker") == victim for f in fails), f"victim {victim} not named in {fails}"
assert comp["excluded_wids"] > 0, "no wids reported excluded"
' "$workdir/degraded.json" "http://127.0.0.1:$W2_PORT"
say "degraded 206 names the lost worker and its wid ranges"

say "flight capture of the kill must carry stitched spans from the survivors"
curl -fsS "http://127.0.0.1:$COORD_PORT/v1/queries?status=partial&worker=http://127.0.0.1:$W2_PORT" \
  >"$workdir/flights.json"
cap_id=$(python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
qs = doc.get("queries") or sys.exit("no partial capture lists the lost worker")
print(qs[0]["id"])
' "$workdir/flights.json")
curl -fsS "http://127.0.0.1:$COORD_PORT/v1/queries/$cap_id" >"$workdir/capture.json"
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
victim = sys.argv[2]
ws = doc.get("workers") or sys.exit("capture has no workers summary")
per = ws.get("per_worker") or sys.exit("capture has no per-worker detail")
lost = [d for d in per if d["worker"] == victim]
assert lost and lost[0]["status"] == "failed", f"victim not recorded as failed: {per}"
tid = ws.get("trace_id") or ""
assert len(tid) == 32, f"no propagated trace id: {tid!r}"
trace = doc.get("trace") or sys.exit("capture has no stitched trace")
assert trace.get("trace_id") == ws["trace_id"], "capture trace and summary disagree on the trace id"

def walk(span):
    yield span
    for c in span.get("children") or []:
        yield from walk(c)

spans = list(walk(trace["spans"]))
assert all(s.get("worker") for s in spans), "stitched span without worker attribution"
grafted = [s for s in spans if s["name"] == "worker" and s.get("worker", "").startswith("http://")]
assert grafted, "no surviving worker subtree grafted into the trace"
assert all(s["worker"] != victim for s in grafted), "the dead worker contributed a subtree"
' "$workdir/capture.json" "http://127.0.0.1:$W2_PORT"
say "capture carries the victim as failed and worker-attributed spans from the survivors"

say "waiting for /readyz to report the loss"
for i in $(seq 1 30); do
  curl -fsS "http://127.0.0.1:$COORD_PORT/readyz" >"$workdir/readyz.json"
  if python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
sys.exit(0 if doc.get("status") == "degraded" and doc.get("workers_lost") else 1)
' "$workdir/readyz.json"; then break; fi
  [ "$i" = 30 ] && die "readyz never degraded: $(cat "$workdir/readyz.json")"
  sleep 0.3
done
say "readyz degraded with workers_lost"

curl -fsS "http://127.0.0.1:$COORD_PORT/metrics?format=prometheus" >"$workdir/metrics.prom"
grep -q "wlq_cluster_worker_breaker_open{worker=\"http://127.0.0.1:$W2_PORT\"} 1" "$workdir/metrics.prom" \
  || die "breaker-open gauge for the victim missing from the prometheus exposition"
say "victim breaker visible as open in /metrics"

say "rejoining worker 2 on the same port"
pids[1]=$(start_worker "$W2_PORT")
wait_ready "http://127.0.0.1:$W2_PORT"

# The breaker needs its 2s cooldown before it half-opens; poll until the
# fleet answers complete again.
for i in $(seq 1 30); do
  code=$(post "http://127.0.0.1:$COORD_PORT" "$workdir/healed.json")
  if [ "$code" = 200 ]; then break; fi
  [ "$i" = 30 ] && die "fleet never healed: last status $code: $(cat "$workdir/healed.json")"
  sleep 0.5
done
[ "$(digest "$workdir/single.json")" = "$(digest "$workdir/healed.json")" ] \
  || die "post-rejoin answer diverges from single-node"
say "post-rejoin 200 is digest-equal to single-node"

say "PASS"
