package wlq_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"wlq"
	"wlq/internal/benchkit"
	"wlq/internal/wlog"
)

// skewedLog builds a log whose measured sequential selectivity contradicts
// the Theorem 5 constant: every instance emits all its A records before all
// its B records, so each of the 16 per-instance (A,B) pairs satisfies A ≺ B
// and the observed selectivity is 1.0 — four times the assumed 0.25. The
// per-activity counts (A:4, B:4, E:3, F:5 per instance) are chosen so the
// estimated cardinality of (A -> B) falls between E's and F's under the
// model constant but above both under the measured value, which reorders
// the ⊕ chain.
func skewedLog(t *testing.T) *wlq.Log {
	t.Helper()
	var b wlog.Builder
	for i := 0; i < 60; i++ {
		wid := b.Start()
		for _, step := range []struct {
			activity string
			n        int
		}{{"A", 4}, {"B", 4}, {"E", 3}, {"F", 5}} {
			for j := 0; j < step.n; j++ {
				if err := b.Emit(wid, step.activity, nil, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := b.End(wid); err != nil {
			t.Fatal(err)
		}
	}
	log, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestAdaptivePlanFlipEndToEnd is the closed-loop acceptance test: a warmup
// query feeds the Meter's measured selectivities into the statistics
// registry, the next query is planned differently than under the constant
// model, the answers stay digest-equal, and the trace's cost table cites the
// measured selectivity.
func TestAdaptivePlanFlipEndToEnd(t *testing.T) {
	l := skewedLog(t)
	reg := wlq.NewStatsRegistry()
	adaptive := wlq.NewEngine(l, wlq.WithStats(reg))

	// Warmup: one plain sequential query is enough evidence (60 instances
	// x 16 pairs each) to cross the registry's threshold.
	if _, err := adaptive.Query("A -> B"); err != nil {
		t.Fatal(err)
	}
	sel := reg.Selectivities()
	if !sel.Measured() {
		t.Fatalf("warmup left registry unmeasured: %+v", sel)
	}
	if sel.Sequential < 0.99 {
		t.Fatalf("measured sequential selectivity = %g, want ~1.0 (all A before all B)", sel.Sequential)
	}

	const query = "E & (A -> B) & F"
	static := wlq.NewEngine(l)
	ctx := context.Background()
	staticSet, staticTrace, err := static.QueryTraced(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveSet, adaptiveTrace, err := adaptive.QueryTraced(ctx, query)
	if err != nil {
		t.Fatal(err)
	}

	wantStatic := wlq.MustParsePattern("(E & (A -> B)) & F").String()
	wantAdaptive := wlq.MustParsePattern("(E & F) & (A -> B)").String()
	if staticTrace.Plan != wantStatic {
		t.Errorf("static plan = %q, want %q", staticTrace.Plan, wantStatic)
	}
	if adaptiveTrace.Plan != wantAdaptive {
		t.Errorf("adaptive plan = %q, want %q", adaptiveTrace.Plan, wantAdaptive)
	}
	if staticTrace.Plan == adaptiveTrace.Plan {
		t.Fatal("measured selectivities did not change the plan")
	}

	// Different plans, same answers: the reorder is Theorem 2-3 sound.
	if ds, da := benchkit.Digest(staticSet.String()), benchkit.Digest(adaptiveSet.String()); ds != da {
		t.Fatalf("answer digests diverged: static %s, adaptive %s", ds, da)
	}

	// The adaptive cost table must attribute the sequential node's
	// selectivity to the registry, the static one to the model constant.
	var found bool
	for _, row := range adaptiveTrace.CostTable {
		if row.Op == "sequential" {
			found = true
			if row.SelectivitySource != "measured" {
				t.Errorf("adaptive sequential row source = %q, want measured", row.SelectivitySource)
			}
		}
	}
	if !found {
		t.Fatal("no sequential row in adaptive cost table")
	}
	for _, row := range staticTrace.CostTable {
		if row.Op == "sequential" && row.SelectivitySource != "assumed" {
			t.Errorf("static sequential row source = %q, want assumed", row.SelectivitySource)
		}
	}

	// Explain on the adaptive engine reports the measured model.
	explain, err := adaptive.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "cost model: adaptive (measured=true") ||
		!strings.Contains(explain, "sequential=1 measured") {
		t.Errorf("Explain does not cite measured selectivities:\n%s", explain)
	}
	staticExplain, err := static.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(staticExplain, "cost model: adaptive") {
		t.Errorf("static Explain reports an adaptive cost model:\n%s", staticExplain)
	}
}

// TestAdaptiveStatsFileRoundtrip checks the persistence path: a warmed
// registry saved to disk plans adaptively in a fresh engine with no warmup.
func TestAdaptiveStatsFileRoundtrip(t *testing.T) {
	l := skewedLog(t)
	warm := wlq.NewStatsRegistry()
	if _, err := wlq.NewEngine(l, wlq.WithStats(warm)).Query("A -> B"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "skewed.stats.json")
	if err := wlq.SaveStats(warm, path); err != nil {
		t.Fatal(err)
	}

	loaded, err := wlq.LoadStats(path)
	if err != nil {
		t.Fatal(err)
	}
	e := wlq.NewEngine(l, wlq.WithStats(loaded))
	_, tr, err := e.QueryTraced(context.Background(), "E & (A -> B) & F")
	if err != nil {
		t.Fatal(err)
	}
	if want := wlq.MustParsePattern("(E & F) & (A -> B)").String(); tr.Plan != want {
		t.Fatalf("plan from reloaded stats = %q, want %q", tr.Plan, want)
	}
}
