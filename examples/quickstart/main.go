// Quickstart: build a tiny workflow log in code and query it with all four
// incident-pattern operators.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wlq"
)

func main() {
	// A log is a sequence of records across workflow instances. The Builder
	// assigns log sequence numbers and enforces the paper's Definition 2
	// (START first, dense per-instance sequence numbers, END last).
	var b wlq.Builder

	// Instance 1: an order that is paid, packed and shipped.
	o1 := b.Start()
	must(b.Emit(o1, "Pay", nil, wlq.Attrs("amount", 120)))
	must(b.Emit(o1, "Pack", nil, nil))
	must(b.Emit(o1, "Ship", nil, wlq.Attrs("carrier", "ACME")))
	must(b.End(o1))

	// Instance 2: shipped before payment — the anomaly we will query for.
	o2 := b.Start()
	must(b.Emit(o2, "Pack", nil, nil))
	must(b.Emit(o2, "Ship", nil, wlq.Attrs("carrier", "ACME")))
	must(b.Emit(o2, "Pay", nil, wlq.Attrs("amount", 80)))
	must(b.End(o2))

	logData, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The log:")
	fmt.Println(logData)

	engine := wlq.NewEngine(logData)

	queries := []struct {
		what  string
		query string
	}{
		{"consecutive: Pack immediately followed by Ship", "Pack . Ship"},
		{"sequential: Pay eventually followed by Ship", "Pay -> Ship"},
		{"the anomaly: Ship before Pay", "Ship -> Pay"},
		{"choice: either a Pack or a Ship record", "Pack | Ship"},
		{"parallel: a Pay and a Ship in either order", "Pay & Ship"},
		{"negation: something other than Pay, then Ship", "!Pay . Ship"},
		{"guard extension: big payments only", "Pay[amount>100]"},
	}
	for _, q := range queries {
		set, err := engine.Query(q.query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %-18s => %s\n", q.what, q.query, set)
	}

	// Incidents are (wid, {is-lsn...}) references; materialize one back
	// into its records.
	set, err := engine.Query("Ship -> Pay")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe ship-before-pay incident, record by record:")
	for _, inc := range set.Incidents() {
		for _, rec := range engine.IncidentRecords(inc) {
			fmt.Println(" ", rec)
		}
	}

	// Explain shows the incident tree (paper Figure 4) and the plan.
	text, err := engine.Explain("(Pay -> Pack) | (Pay -> Ship)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExplain for a factorable query:")
	fmt.Print(text)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
