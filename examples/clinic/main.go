// Clinic: the paper's running example end to end. Reproduces the worked
// queries on the Figure 3 log, then scales the same analysis to a generated
// 2000-instance referral log: fraud-style anomaly detection and the
// Section 1 motivating aggregation ("how many students every year get
// referrals with balance > 5000?").
//
//	go run ./examples/clinic
package main

import (
	"fmt"
	"log"
	"time"

	"wlq"
)

func main() {
	paperExamples()
	scaledAnalysis()
}

// paperExamples runs the queries of Examples 3 and 5 on Figure 3.
func paperExamples() {
	fmt.Println("=== Part 1: the paper's Figure 3 log ===")
	engine := wlq.NewEngine(wlq.ClinicFig3())

	// Example 3: students updating a referral before being reimbursed.
	set, err := engine.Query("UpdateRefer -> GetReimburse")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 3, UpdateRefer ≺ GetReimburse: %s (paper: {l14, l20})\n", set)

	// Example 5: ... preceded by seeing a doctor.
	set, err = engine.Query("SeeDoctor -> (UpdateRefer -> GetReimburse)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 5, SeeDoctor ≺ (UpdateRefer ≺ GetReimburse): %s (paper: {l13, l14, l20})\n", set)
	for _, inc := range set.Incidents() {
		for _, rec := range engine.IncidentRecords(inc) {
			fmt.Printf("   l%-2d %s\n", rec.LSN, rec.Activity)
		}
	}
	fmt.Println()
}

// scaledAnalysis generates a 2000-instance referral log and runs the
// introduction's analytics on it.
func scaledAnalysis() {
	fmt.Println("=== Part 2: a generated 2000-instance referral log ===")
	logData, err := wlq.ClinicLog(2000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("log: %d records, %d instances\n\n", logData.Len(), len(logData.WIDs()))
	engine := wlq.NewEngine(logData)

	// Motivating query 1: yearly counts of high-balance referrals.
	fmt.Println("How many students every year get referrals with balance > 5000?")
	byYear, err := engine.GroupByAttr("GetRefer[balance>5000]", "year")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(byYear)

	// Motivating query 2: the anomaly — updating a referral AFTER the
	// reimbursement has been paid out.
	fmt.Println("\nAre there students updating a referral after they already got reimbursed?")
	exists, err := engine.Exists("GetReimburse -> UpdateRefer")
	if err != nil {
		log.Fatal(err)
	}
	count, err := engine.Count("GetReimburse -> UpdateRefer")
	if err != nil {
		log.Fatal(err)
	}
	students, err := engine.DistinctInstances("GetReimburse -> UpdateRefer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer: %v — %d incident(s) across %d student(s)\n", exists, count, students)

	byHospital, err := engine.GroupByInstanceAttr("GetReimburse -> UpdateRefer", "hospital")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("offending incidents by referred hospital:")
	fmt.Print(byHospital)

	// A richer temporal pattern: a full "visit" shape — check in, see a
	// doctor, pay, and take treatment, in order but not necessarily
	// adjacent.
	fmt.Println("\nComplete treatment journeys (CheckIn ≺ SeeDoctor ≺ PayTreatment ≺ TakeTreatment):")
	journeys, err := engine.DistinctInstances("CheckIn -> SeeDoctor -> PayTreatment -> TakeTreatment")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d students completed at least one full journey\n", journeys)

	// Consecutive vs sequential: immediate payment after seeing the doctor.
	immediate, err := engine.Count("SeeDoctor . PayTreatment")
	if err != nil {
		log.Fatal(err)
	}
	eventual, err := engine.Count("SeeDoctor -> PayTreatment")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSeeDoctor ⊙ PayTreatment (immediate): %d;  SeeDoctor ≺ PayTreatment (eventual): %d\n",
		immediate, eventual)

	// Durations need timestamps: regenerate the log with simulated clock
	// stamping and measure how long referrals take end to end.
	timed, err := wlq.ClinicLogTimed(2000, 42)
	if err != nil {
		log.Fatal(err)
	}
	st, err := wlq.NewEngine(timed).Durations("GetRefer -> GetReimburse")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreferral-to-reimbursement wall-clock span over %d incidents:\n", st.Counted)
	fmt.Printf("  min %v / mean %v / max %v\n",
		st.Min.Round(time.Minute), st.Mean.Round(time.Minute), st.Max.Round(time.Minute))
}
