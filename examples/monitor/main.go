// Monitor: evaluate watch queries continuously while a workflow engine is
// still writing the log — the "runtime execution monitoring" use the paper
// contrasts with offline ETL analysis (Figure 2).
//
// The program simulates an engine by replaying a generated referral log
// record by record into a wlq.Monitor. The monitor maintains the
// Algorithm 2 index incrementally and re-evaluates each watch against only
// the workflow instance a record extends, alerting at the exact record that
// first completes an incident — once per watch per instance.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"wlq"
)

func main() {
	full, err := wlq.ClinicLog(300, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d records from %d referral instances\n\n", full.Len(), len(full.WIDs()))

	shown := map[string]bool{}
	monitor := wlq.NewMonitor(func(a wlq.Alert) {
		// Print only the first alert per watch to keep the demo readable;
		// the monitor itself tracks every instance.
		if !shown[a.Watch] {
			shown[a.Watch] = true
			fmt.Printf("first alert: %s\n", a)
		}
	})

	watches := map[string]string{
		"post-reimbursement update (possible fraud)": "GetReimburse -> UpdateRefer",
		"three doctor visits in one referral":        "SeeDoctor -> SeeDoctor -> SeeDoctor",
		"referral updated twice":                     "UpdateRefer -> UpdateRefer",
		"reimbursement with no payment ever":         "CheckIn . SeeDoctor . GetReimburse",
	}
	for name, q := range watches {
		if err := monitor.Watch(name, q); err != nil {
			log.Fatal(err)
		}
	}

	if err := monitor.IngestLog(full); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nafter %d records, %d alerts total. instances per watch:\n",
		monitor.Records(), monitor.Alerts())
	for _, name := range monitor.WatchNames() {
		fmt.Printf("  %-50s %4d instance(s)\n", name, monitor.FiredInstances(name))
	}

	// The monitor also answers ad-hoc queries over everything seen so far.
	set, err := monitor.Query("GetRefer[balance>5000]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nad-hoc query over the ingested log: %d high-balance referrals\n", set.Len())
}
