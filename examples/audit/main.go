// Audit: enact thousands of interleaved instances of the order-fulfillment
// model and audit the resulting log for compliance violations with incident
// patterns — the "detecting anomalous or malicious behavior" application
// the paper's conclusion proposes — first with hand-written queries, then
// with the rule set derived automatically from the clean reference model
// ("constructing queries from business principles").
//
// The models library deliberately plants buggy paths (e.g. a shipment
// without a fraud check in ~5% of orders) at documented rates, and the
// audit queries find exactly those instances.
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"log"
	"time"

	"wlq"
	"wlq/internal/audit"
	"wlq/internal/models"
)

func main() {
	catalog := models.Orders()
	logData, err := catalog.Generate(5000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enacted %d orders -> %d log records\n\n", len(logData.WIDs()), logData.Len())

	engine := wlq.NewEngine(logData)

	audits := []struct {
		rule  string
		query string
		// violation is true when a match means non-compliance.
		violation bool
	}{
		{
			rule:      "every shipment is preceded by a fraud check",
			query:     catalog.Anomalies[0].Query,
			violation: true,
		},
		{
			rule:      "pick/pack and invoicing proceed in parallel",
			query:     "Pick & Invoice",
			violation: false,
		},
		{
			rule:      "refunds only after a return",
			query:     "Refund -> Return",
			violation: true,
		},
		{
			rule:      "packing immediately after picking",
			query:     "Pick . Pack",
			violation: false,
		},
	}
	for _, a := range audits {
		start := time.Now()
		n, err := engine.DistinctInstances(a.query)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "OK"
		if a.violation && n > 0 {
			verdict = "VIOLATION"
		} else if a.violation {
			verdict = "clean"
		}
		fmt.Printf("rule: %s\n  query: %-40s  instances: %-5d  [%s]  (%v)\n",
			a.rule, a.query, n, verdict, time.Since(start).Round(time.Microsecond))
	}

	// Drill into the planted bug: shipped orders whose Validate was NOT
	// followed (consecutively) by FraudCheck.
	fmt.Println("\nunchecked shipments by express flag (written at Receive):")
	report, err := engine.GroupByInstanceAttr(catalog.Anomalies[0].Query, "express")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	// How often does the bug fire? Compare against all shipped orders and
	// the rate the model documents.
	shipped, err := engine.DistinctInstances("Ship")
	if err != nil {
		log.Fatal(err)
	}
	unchecked, err := engine.DistinctInstances(catalog.Anomalies[0].Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d of %d shipped orders (%.1f%%) bypassed the fraud check (planted rate: %.0f%%)\n",
		unchecked, shipped, 100*float64(unchecked)/float64(shipped),
		100*catalog.Anomalies[0].Rate)

	// The same audit, across the other models in the library.
	fmt.Println("\nanomaly sweep across every model in the library:")
	for name, c := range models.All() {
		l, err := c.Generate(2000, 13)
		if err != nil {
			log.Fatal(err)
		}
		e := wlq.NewEngine(l)
		for _, anomaly := range c.Anomalies {
			n, err := e.DistinctInstances(anomaly.Query)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s %-40s %4d / 2000 instances (planted ≈%.1f%%)\n",
				name, anomaly.Name, n, 100*anomaly.Rate)
		}
	}

	// Finally, skip the hand-written queries entirely: derive the complete
	// compliance rule set from the clean reference model ("constructing
	// queries from business principles", the paper's Section 6 outlook) and
	// let the generated rules localize the deviations.
	fmt.Println("\nauto-derived audit (rules generated from the clean reference model):")
	derived, err := audit.Check(logData, catalog.Reference)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(derived)
}
