// Interop: query event logs from other tools. The program writes a CSV
// event log and an XES (IEEE 1849) document — the formats process-mining
// tools exchange — imports both, mines the directly-follows graph, and runs
// incident-pattern queries over the imported data.
//
//	go run ./examples/interop
package main

import (
	"fmt"
	"log"
	"strings"

	"wlq"
)

// A small procurement event log, as it might be exported from an ERP
// system: case id, activity, ISO timestamp, and a data column.
const procurementCSV = `case,activity,when,amount
PO-17,CreateOrder,2017-03-01T09:00:00Z,4200
PO-17,Approve,2017-03-01T12:30:00Z,
PO-18,CreateOrder,2017-03-01T13:00:00Z,980
PO-17,SendToVendor,2017-03-02T08:00:00Z,
PO-18,SendToVendor,2017-03-02T09:00:00Z,
PO-18,Approve,2017-03-02T16:00:00Z,
PO-17,ReceiveGoods,2017-03-05T10:00:00Z,
PO-17,PayInvoice,2017-03-06T11:00:00Z,4200
PO-18,ReceiveGoods,2017-03-07T10:00:00Z,
PO-18,PayInvoice,2017-03-08T11:00:00Z,980
`

// The same style of data as XES, the standard interchange format.
const ticketsXES = `<?xml version="1.0"?>
<log xes.version="1.0">
  <trace>
    <string key="concept:name" value="T-1"/>
    <event><string key="concept:name" value="Open"/><string key="severity" value="high"/></event>
    <event><string key="concept:name" value="Work"/></event>
    <event><string key="concept:name" value="Resolve"/></event>
    <event><string key="concept:name" value="CloseTicket"/></event>
  </trace>
  <trace>
    <string key="concept:name" value="T-2"/>
    <event><string key="concept:name" value="Open"/><string key="severity" value="low"/></event>
    <event><string key="concept:name" value="CloseTicket"/></event>
  </trace>
</log>`

func main() {
	// --- CSV ---------------------------------------------------------------
	poLog, err := wlq.ImportCSV(strings.NewReader(procurementCSV), wlq.CSVOptions{
		TimeColumn:    "when",
		CompleteCases: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSV import: %d records across %d purchase orders\n", poLog.Len(), len(poLog.WIDs()))

	engine := wlq.NewEngine(poLog)

	// Compliance: did anything get sent to a vendor before approval?
	// PO-18 did (SendToVendor at 09:00, Approve at 16:00).
	early, err := engine.Query("SendToVendor -> Approve")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent to vendor before approval: %s\n", early)
	for _, inc := range early.Incidents() {
		for _, rec := range engine.IncidentRecords(inc) {
			fmt.Printf("  l%-2d %-13s %s\n", rec.LSN, rec.Activity, rec.Out.Get("time"))
		}
	}

	// Big orders that were paid.
	paid, err := engine.Count("CreateOrder[amount>1000] -> PayInvoice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("big orders reaching payment: %d\n\n", paid)

	// The mined directly-follows graph of the procurement process.
	fmt.Println("procurement directly-follows graph:")
	fmt.Print(wlq.DirectlyFollows(poLog, false))

	// --- XES ---------------------------------------------------------------
	ticketLog, err := wlq.ImportXES(strings.NewReader(ticketsXES), wlq.XESOptions{CompleteCases: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nXES import: %d records across %d tickets\n", ticketLog.Len(), len(ticketLog.WIDs()))

	tickets := wlq.NewEngine(ticketLog)
	// T-2 closed without ever being resolved.
	unresolved, err := tickets.InstancesWithout("CloseTicket", "Resolve")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tickets closed without a resolution: %v\n", unresolved)

	bySeverity, err := tickets.GroupByInstanceAttr("CloseTicket", "severity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("closed tickets by severity:")
	fmt.Print(bySeverity)
}
